type policy = Greedy | Cost_benefit

let policy_name = function Greedy -> "greedy" | Cost_benefit -> "cost_benefit"

type result = { segments_cleaned : int; blocks_moved : int; bytes_moved : int }

let select_victims fs ~policy ~limit =
  let su = Fs.seguse fs in
  let candidates = ref [] in
  Segusage.iter su (fun seg e ->
      if
        e.state = Segusage.Dirty && seg <> Fs.cur_seg fs && seg <> Fs.next_seg fs
      then candidates := (seg, e) :: !candidates);
  let seg_bytes = Param.seg_bytes (Fs.param fs) in
  let score (_, (e : Segusage.entry)) =
    match policy with
    | Greedy -> float_of_int e.live_bytes
    | Cost_benefit ->
        let u = float_of_int e.live_bytes /. float_of_int seg_bytes in
        let age = Float.max 1.0 (Fs.now fs -. e.lastmod) in
        (* higher benefit = better victim; negate for ascending sort *)
        -.((1.0 -. u) *. age /. (1.0 +. u))
  in
  let ranked = List.sort (fun a b -> Float.compare (score a) (score b)) !candidates in
  let victims = List.filteri (fun i _ -> i < limit) ranked in
  if victims <> [] && Obs.Decision.enabled () then begin
    let now = Fs.now fs in
    let cand ((seg, (e : Segusage.entry)) as c) =
      Obs.Decision.candidate seg ~score:(score c)
        ~feats:
          {
            Obs.Decision.idle = 0.0;
            size = e.live_bytes;
            util = float_of_int e.live_bytes /. float_of_int seg_bytes;
            temp = 0.0;
            age = Float.max 0.0 (now -. e.lastmod);
          }
    in
    let rest = List.filteri (fun i _ -> i >= limit) ranked in
    Obs.Decision.emit ~now ~site:Obs.Decision.Clean_victims ~policy:(policy_name policy)
      ~chosen:(List.map cand victims) ~rejected:(List.map cand rest) ()
  end;
  List.map fst victims

(* Walk a segment's chain of partial summaries. *)
let fold_partials fs seg f acc =
  let p = Fs.param fs in
  let dev = Fs.dev fs in
  let base = Layout.seg_base p seg in
  let rec go off acc =
    if off >= p.Param.seg_blocks - 1 then acc
    else
      let sum_block = dev.Dev.read ~blk:(base + off) ~count:1 in
      match Summary.deserialize sum_block with
      | Error _ -> acc
      | Ok (sum, _) ->
          let nb = Summary.nblocks_total sum in
          if off + 1 + nb > p.Param.seg_blocks then acc
          else go (off + 1 + nb) (f acc ~off ~sum)
  in
  go 0 acc

let scan_segment fs seg =
  let p = Fs.param fs in
  let base = Layout.seg_base p seg in
  fold_partials fs seg
    (fun acc ~off ~sum ->
      let cursor = ref (base + off + 1) in
      let records = ref [] in
      List.iter
        (fun fi ->
          List.iter
            (fun bkey ->
              records := (!cursor, fi.Summary.fi_ino, bkey) :: !records;
              incr cursor)
            fi.Summary.fi_blocks)
        sum.Summary.finfos;
      List.iter (fun addr -> records := (addr, -1, Bkey.Data 0) :: !records) sum.Summary.inode_addrs;
      acc @ List.rev !records)
    []

let is_live fs ~addr ~inum ~version bkey =
  let e = Imap.get (Fs.imap fs) inum in
  if e.addr = -1 || e.version <> version then false
  else
    match Fs.get_inode fs inum with
    | exception Not_found -> false
    | ino -> Fs.lookup_addr fs ino bkey = addr

let collect_segment fs seg =
  let p = Fs.param fs in
  let dev = Fs.dev fs in
  let base = Layout.seg_base p seg in
  let moved = ref 0 in
  ignore
    (fold_partials fs seg
       (fun () ~off ~sum ->
         let cursor = ref (base + off + 1) in
         (* live file blocks: drag them into the cache dirty so the next
            flush re-homes them at the log tail *)
         List.iter
           (fun fi ->
             let inum = fi.Summary.fi_ino in
             List.iter
               (fun bkey ->
                 let addr = !cursor in
                 incr cursor;
                 if is_live fs ~addr ~inum ~version:fi.Summary.fi_version bkey then begin
                   let key = (inum, bkey) in
                   let cache = Fs.bcache fs in
                   if not (Bcache.is_dirty cache key) then begin
                     (match Bcache.find cache key with
                     | Some _ -> Bcache.mark_dirty cache key
                     | None ->
                         let data = dev.Dev.read ~blk:addr ~count:1 in
                         Bcache.put_dirty cache key ~old_addr:addr data);
                     incr moved
                   end
                 end)
               fi.Summary.fi_blocks)
           sum.Summary.finfos;
         (* live inodes: re-dirty them so they are re-packed elsewhere *)
         List.iter
           (fun inode_addr ->
             let block = dev.Dev.read ~blk:inode_addr ~count:1 in
             Inode.iter_block block (fun disk_ino ->
                 let inum = disk_ino.Inode.inum in
                 if inum > 0 && inum < Imap.max_inodes (Fs.imap fs) then begin
                   let e = Imap.get (Fs.imap fs) inum in
                   if e.addr = inode_addr && e.version = disk_ino.Inode.version then begin
                     let ino = Fs.get_inode fs inum in
                     Fs.mark_inode_dirty fs ino;
                     incr moved
                   end
                 end))
           sum.Summary.inode_addrs;
         ())
       ());
  !moved

let clean_segments fs segs =
  Fs.set_cleaning fs true;
  Fun.protect ~finally:(fun () -> Fs.set_cleaning fs false) @@ fun () ->
  let bs = (Fs.param fs).Param.block_size in
  let moved = List.fold_left (fun acc seg -> acc + collect_segment fs seg) 0 segs in
  (* persist the moves before declaring the victims empty *)
  Fs.checkpoint fs;
  List.iter (fun seg -> Segusage.set_state (Fs.seguse fs) seg Segusage.Clean) segs;
  Fs.note_segments_freed fs;
  { segments_cleaned = List.length segs; blocks_moved = moved; bytes_moved = moved * bs }

let clean_once fs ?(policy = Cost_benefit) ?(max_segments = 4) () =
  (* when the log is nearly full, clean one victim at a time: copying a
     batch forward needs log space of its own *)
  let max_segments = min max_segments (max 1 (Fs.nclean fs - 1)) in
  match select_victims fs ~policy ~limit:max_segments with
  | [] -> { segments_cleaned = 0; blocks_moved = 0; bytes_moved = 0 }
  | victims ->
      let before = Fs.nclean fs in
      let r = clean_segments fs victims in
      if Obs.Decision.enabled () then begin
        (* write-amplification per policy: bytes copied forward against
           net log space reclaimed by the pass *)
        let seg_bytes = Param.seg_bytes (Fs.param fs) in
        Obs.Decision.note_cleaned ~policy:(policy_name policy)
          ~segments:r.segments_cleaned ~bytes_moved:r.bytes_moved
          ~bytes_reclaimed:(max 0 ((Fs.nclean fs - before) * seg_bytes))
      end;
      r

let clean_until fs ?(policy = Cost_benefit) ~target_clean () =
  let total = ref { segments_cleaned = 0; blocks_moved = 0; bytes_moved = 0 } in
  let rec go () =
    if Fs.nclean fs < target_clean then begin
      let before = Fs.nclean fs in
      let r =
        (* a cleaning pass that cannot fit its own copies stops the loop
           rather than killing the caller; the disk is simply full. The
           stall is made visible (trace instant + counter) rather than
           silently absorbed, and anything other than No_space — a
           policy or I/O bug — propagates instead of hiding here. *)
        match clean_once fs ~policy () with
        | r -> r
        | exception Fs.No_space ->
            Sim.Trace.instant ~track:"cleaner" ~cat:"cleaner" "clean-nospace";
            Obs.Decision.count_event "cleaner.nospace_stalls";
            { segments_cleaned = 0; blocks_moved = 0; bytes_moved = 0 }
        | exception e ->
            Sim.Trace.instant ~track:"cleaner" ~cat:"cleaner" "clean-error"
              ~args:[ ("exn", Printexc.to_string e) ];
            raise e
      in
      (* cleaning segments full of live data only shuffles it; stop when
         a pass yields no net gain (the space must come from deletion or
         migration instead) *)
      if r.segments_cleaned > 0 && Fs.nclean fs > before then begin
        total :=
          {
            segments_cleaned = !total.segments_cleaned + r.segments_cleaned;
            blocks_moved = !total.blocks_moved + r.blocks_moved;
            bytes_moved = !total.bytes_moved + r.bytes_moved;
          };
        go ()
      end
    end
  in
  go ();
  !total

let spawn_daemon fs ?(policy = Cost_benefit) ?(period = 5.0) ~low_water ~high_water () =
  let stopped = ref false in
  Sim.Engine.spawn (Fs.engine fs) ~name:"cleaner" (fun () ->
      let rec loop () =
        Sim.Engine.delay period;
        if not !stopped then begin
          if Fs.nclean fs < low_water then
            ignore (clean_until fs ~policy ~target_clean:high_water ());
          loop ()
        end
      in
      loop ());
  fun () -> stopped := true
