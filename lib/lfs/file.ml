open Util

let bs fs = (Fs.param fs).Param.block_size

let nblocks fs ino = (ino.Inode.size + bs fs - 1) / bs fs

let read fs ino ~off ~len =
  Fs.charge_cpu fs (Fs.param fs).Param.cpu.syscall;
  if off < 0 || len < 0 then invalid_arg "File.read";
  let len = max 0 (min len (ino.Inode.size - off)) in
  let out = Bytes.create len in
  let bsz = bs fs in
  let pos = ref 0 in
  while !pos < len do
    let fileoff = off + !pos in
    let lbn = fileoff / bsz in
    let boff = fileoff mod bsz in
    let n = min (bsz - boff) (len - !pos) in
    (match Fs.get_block fs ino (Bkey.Data lbn) with
    | Some data -> Bytes.blit data boff out !pos n
    | None -> Bytes.fill out !pos n '\000');
    pos := !pos + n
  done;
  if len > 0 then Fs.touch_atime fs ino.Inode.inum;
  out

let write fs ino ~off data =
  Fs.charge_cpu fs (Fs.param fs).Param.cpu.syscall;
  if off < 0 then invalid_arg "File.write";
  let len = Bytes.length data in
  let bsz = bs fs in
  let pos = ref 0 in
  while !pos < len do
    let fileoff = off + !pos in
    let lbn = fileoff / bsz in
    let boff = fileoff mod bsz in
    let n = min (bsz - boff) (len - !pos) in
    if n = bsz then begin
      (* whole-block overwrite: no read-modify-write needed *)
      let fresh = Bytes.sub data !pos bsz in
      Fs.put_block fs ino (Bkey.Data lbn) fresh
    end
    else begin
      let block = Fs.get_block_for_write fs ino (Bkey.Data lbn) in
      Bytes.blit data !pos block boff n
    end;
    pos := !pos + n;
    (* keep the size current so flushes mid-write record valid state,
       and flush segment-by-segment so a huge write can never pile up
       more dirty data than the log's reserve absorbs *)
    if off + !pos > ino.Inode.size then ino.Inode.size <- off + !pos;
    Fs.maybe_flush fs
  done;
  ino.Inode.mtime <- Fs.now fs;
  if Obs.Decision.enabled () then
    Obs.Decision.touch_file ~now:(Fs.now fs) ~write:true ino.Inode.inum;
  Fs.mark_inode_dirty fs ino;
  Fs.maybe_flush fs

(* Walk the pointer tree bottom-up so children are visited before the
   indirect blocks that point at them. *)
let iter_assigned_blocks fs ino f =
  let bsz = bs fs in
  let ppb = bsz / 4 in
  let visit_l1 p addr_of_l1 =
    if addr_of_l1 <> -1 then begin
      match Fs.get_block fs ino (Bkey.L1 p) with
      | None -> ()
      | Some pdata ->
          for slot = 0 to ppb - 1 do
            let child = Bytesx.get_i32 pdata (slot * 4) in
            if child <> -1 then f (Bkey.Data (Bkey.ndirect + (p * ppb) + slot)) child
          done;
          f (Bkey.L1 p) addr_of_l1
    end
  in
  let visit_l2 q addr_of_l2 =
    if addr_of_l2 <> -1 then begin
      match Fs.get_block fs ino (Bkey.L2 q) with
      | None -> ()
      | Some pdata ->
          for slot = 0 to ppb - 1 do
            let child = Bytesx.get_i32 pdata (slot * 4) in
            if child <> -1 then visit_l1 (1 + (q * ppb) + slot) child
          done;
          f (Bkey.L2 q) addr_of_l2
    end
  in
  Array.iteri
    (fun i addr -> if addr <> -1 then f (Bkey.Data i) addr)
    ino.Inode.direct;
  visit_l1 0 ino.Inode.single;
  visit_l2 0 ino.Inode.double;
  if ino.Inode.triple <> -1 then begin
    match Fs.get_block fs ino Bkey.L3 with
    | None -> ()
    | Some pdata ->
        for slot = 0 to ppb - 1 do
          let child = Bytesx.get_i32 pdata (slot * 4) in
          if child <> -1 then visit_l2 (1 + slot) child
        done;
        f Bkey.L3 ino.Inode.triple
  end

let free_blocks fs ino =
  let bsz = bs fs in
  (* account every assigned block away, then clear all pointers *)
  iter_assigned_blocks fs ino (fun _bkey addr -> Fs.account fs ~addr (-bsz));
  (* dirty, never-written blocks occupy no disk space; just drop them *)
  (Fs.bcache fs |> fun cache -> Bcache.drop_inum cache ino.Inode.inum);
  Array.fill ino.Inode.direct 0 Bkey.ndirect (-1);
  ino.Inode.single <- -1;
  ino.Inode.double <- -1;
  ino.Inode.triple <- -1;
  ino.Inode.size <- 0;
  Fs.mark_inode_dirty fs ino

let truncate fs ino newsize =
  Fs.charge_cpu fs (Fs.param fs).Param.cpu.syscall;
  if newsize < 0 then invalid_arg "File.truncate";
  if newsize >= ino.Inode.size then begin
    (* extension: just a size change, the gap is a hole *)
    if newsize > ino.Inode.size then begin
      ino.Inode.size <- newsize;
      ino.Inode.mtime <- Fs.now fs;
      Fs.mark_inode_dirty fs ino
    end
  end
  else if newsize = 0 then begin
    free_blocks fs ino;
    ino.Inode.mtime <- Fs.now fs;
    Fs.mark_inode_dirty fs ino
  end
  else begin
    let bsz = bs fs in
    let keep = (newsize + bsz - 1) / bsz in
    let old_blocks = nblocks fs ino in
    for lbn = keep to old_blocks - 1 do
      if Fs.lookup_addr fs ino (Bkey.Data lbn) <> -1 then Fs.zap_pointer fs ino (Bkey.Data lbn)
      else Fs.drop_block fs ino (Bkey.Data lbn)
    done;
    (* zero the tail of the final kept block *)
    (if newsize mod bsz <> 0 then
       match Fs.get_block fs ino (Bkey.Data (keep - 1)) with
       | Some _ ->
           let block = Fs.get_block_for_write fs ino (Bkey.Data (keep - 1)) in
           Bytes.fill block (newsize mod bsz) (bsz - (newsize mod bsz)) '\000'
       | None -> ());
    ino.Inode.size <- newsize;
    ino.Inode.mtime <- Fs.now fs;
    Fs.mark_inode_dirty fs ino
  end
