(** The cleaner: reclaims dirty segments by re-appending their live
    blocks to the log tail (paper §3). Liveness is decided exactly as
    [lfs_bmapv] does it — a block is live iff the file's current block
    map still points at this copy — so stale summaries and reused inums
    are harmless.

    Victims stay Dirty on disk until the post-collection checkpoint has
    persisted the moved blocks; only then are they marked Clean, which
    makes a crash at any point safe (worst case the cleaner re-scans an
    already-empty segment). *)

type policy =
  | Greedy  (** least live bytes first *)
  | Cost_benefit  (** Sprite's (1-u)·age/(1+u) ranking *)

val policy_name : policy -> string
(** The policy id used in decision records and write-amp SLIs. *)

type result = {
  segments_cleaned : int;
  blocks_moved : int;
  bytes_moved : int;
}

val select_victims : Fs.t -> policy:policy -> limit:int -> int list
(** Ranks Dirty segments (never the active, reserved or cached ones). *)

val clean_segments : Fs.t -> int list -> result
(** Cleans exactly these segments. *)

val clean_once : Fs.t -> ?policy:policy -> ?max_segments:int -> unit -> result
(** One pass: pick victims, move live data, checkpoint, mark clean. *)

val clean_until : Fs.t -> ?policy:policy -> target_clean:int -> unit -> result
(** Repeats passes until at least [target_clean] segments are clean or
    no progress is possible. *)

val spawn_daemon :
  Fs.t ->
  ?policy:policy ->
  ?period:float ->
  low_water:int ->
  high_water:int ->
  unit ->
  unit -> unit
(** Background cleaner process: wakes every [period] simulated seconds
    and cleans when clean segments drop below [low_water], stopping at
    [high_water]. Returns a function that shuts the daemon down (it
    exits at its next wake-up). *)

val scan_segment : Fs.t -> int -> (int * int * Bkey.t) list
(** All (address, inum, bkey) block records found in a segment's
    summaries, live or dead (debug and fsck support; inode blocks are
    reported with inum -1 and a dummy key). *)

val is_live : Fs.t -> addr:int -> inum:int -> version:int -> Bkey.t -> bool
