open Util

exception No_space

type hooks = {
  is_foreign : int -> bool;
  account_foreign : addr:int -> int -> unit;
  pre_checkpoint : t -> unit;
  reclaim : unit -> bool;
  segments_freed : unit -> unit;
}

and t = {
  engine : Sim.Engine.t;
  mutable prm : Param.t;
  mutable device : Dev.t;
  tertiary_cfg : Superblock.tertiary option;
  inode_map : Imap.t;
  seg_usage : Segusage.t;
  cache : Bcache.t;
  itable : (int, Inode.t) Hashtbl.t;
  dirty_inodes : (int, unit) Hashtbl.t;
  dead_inodes : Inode.t Queue.t;  (* freed inodes awaiting a log record *)
  mutable cur_seg : int;
  mutable cur_off : int;
  mutable next_seg : int;
  mutable serial : int64;
  mutable cp_slot : int;
  mutable tvol : int;
  mutable tseg_in_vol : int;
  mutable hooks : hooks;
  mutable cleaning : bool;
  mutable in_flush : bool;
  mutable n_segs_written : int;
  mutable n_partials : int;
  mutable cache_floor : int;
}

let no_hooks =
  {
    is_foreign = (fun _ -> false);
    account_foreign = (fun ~addr:_ _ -> ());
    pre_checkpoint = ignore;
    reclaim = (fun () -> false);
    segments_freed = (fun () -> ());
  }

let param t = t.prm
let engine t = t.engine
let dev t = t.device
let tertiary_config t = t.tertiary_cfg
let imap t = t.inode_map
let seguse t = t.seg_usage
let bcache t = t.cache
let cur_seg t = t.cur_seg
let cur_off t = t.cur_off
let next_seg t = t.next_seg
let serial t = t.serial
let now t = Sim.Engine.now t.engine
let tvol t = t.tvol
let tseg_in_vol t = t.tseg_in_vol

let set_tertiary_cursor t ~tvol ~tseg_in_vol =
  t.tvol <- tvol;
  t.tseg_in_vol <- tseg_in_vol

let set_hooks t h = t.hooks <- h
let set_cleaning t b = t.cleaning <- b
let nclean t = Segusage.nclean t.seg_usage
let segments_written t = t.n_segs_written
let partials_written t = t.n_partials
let iter_files t f = Imap.iter_allocated t.inode_map f

let charge_cpu (_ : t) secs = if secs > 0.0 then Sim.Engine.delay secs

let charge_copy t bytes =
  let rate = t.prm.cpu.copy_rate in
  if Float.is_finite rate && bytes > 0 then Sim.Engine.delay (float_of_int bytes /. rate)

(* ---------- Space accounting ---------- *)

let account t ~addr delta =
  if addr >= 0 then
    if t.hooks.is_foreign addr then t.hooks.account_foreign ~addr delta
    else
      match Layout.seg_of_addr t.prm addr with
      | Some seg -> Segusage.add_live t.seg_usage seg delta
      | None -> ()

(* ---------- Inode management ---------- *)

let ifile_inum = 1
let root_inum = 2
let tseg_inum = 3

let mark_inode_dirty t ino = Hashtbl.replace t.dirty_inodes ino.Inode.inum ()

let get_inode t inum =
  match Hashtbl.find_opt t.itable inum with
  | Some ino -> ino
  | None ->
      let e = Imap.get t.inode_map inum in
      if e.addr = -1 then raise Not_found
      else if e.addr = 0 then
        (* allocated this session but never flushed: must be in core *)
        raise Not_found
      else begin
        charge_cpu t t.prm.cpu.per_block;
        let block = t.device.read ~blk:e.addr ~count:1 in
        match Inode.find_in_block block ~inum with
        | None -> failwith (Printf.sprintf "Fs.get_inode: inode %d missing at %d" inum e.addr)
        | Some ino ->
            Hashtbl.replace t.itable inum ino;
            ino
      end

let alloc_inode t ~kind =
  let inum = Imap.alloc t.inode_map in
  let e = Imap.get t.inode_map inum in
  let ino = Inode.create ~inum ~kind ~version:e.version ~now:(now t) in
  Hashtbl.replace t.itable inum ino;
  mark_inode_dirty t ino;
  e.atime <- now t;
  ino

let free_inode t inum =
  let e = Imap.get t.inode_map inum in
  if e.addr > 0 then account t ~addr:e.addr (-Inode.isize);
  (* record a zero-nlink inode in the log so roll-forward replays the
     deletion after a crash *)
  (match Hashtbl.find_opt t.itable inum with
  | Some ino ->
      ino.Inode.nlink <- 0;
      Queue.add ino t.dead_inodes
  | None -> ());
  Imap.free t.inode_map inum;
  Hashtbl.remove t.itable inum;
  Hashtbl.remove t.dirty_inodes inum

let touch_atime t inum =
  Imap.set_atime t.inode_map inum (now t);
  (* the observatory's file-heat tracker and file-recall SLI feed on
     exactly the accesses that move atime *)
  if Obs.Decision.enabled () then Obs.Decision.touch_file ~now:(now t) inum

(* ---------- Block mapping ---------- *)

let ppb t = t.prm.block_size / 4

let rec get_block t ino bkey =
  let key = (ino.Inode.inum, bkey) in
  match Bcache.find t.cache key with
  | Some data -> Some data
  | None -> (
      Bcache.note_miss t.cache;
      match lookup_addr t ino bkey with
      | -1 -> None
      | addr ->
          charge_cpu t t.prm.cpu.per_block;
          let data = t.device.read ~blk:addr ~count:1 in
          Bcache.put_clean t.cache key ~addr data;
          Some data)

and lookup_addr t ino bkey =
  match Bkey.parent ~ppb:(ppb t) bkey with
  | (Bkey.In_inode_direct _ | Bkey.In_inode_single | Bkey.In_inode_double | Bkey.In_inode_triple)
    as p ->
      Inode.get_inode_slot ino p
  | Bkey.In_block (pbk, slot) -> (
      match get_block t ino pbk with
      | None -> -1
      | Some pdata -> Bytesx.get_i32 pdata (slot * 4))

let get_block_for_write t ino bkey =
  let key = (ino.Inode.inum, bkey) in
  match Bcache.find t.cache key with
  | Some data ->
      if not (Bcache.is_dirty t.cache key) then Bcache.mark_dirty t.cache key;
      data
  | None -> (
      match lookup_addr t ino bkey with
      | -1 ->
          (* data holes are zeros; indirect-block holes must decode as
             "unassigned" pointers, i.e. every slot -1 *)
          let fill = if Bkey.level bkey = 0 then '\000' else '\xff' in
          let data = Bytes.make t.prm.block_size fill in
          Bcache.put_dirty t.cache key ~old_addr:(-1) data;
          data
      | addr ->
          charge_cpu t t.prm.cpu.per_block;
          let data = t.device.read ~blk:addr ~count:1 in
          Bcache.put_dirty t.cache key ~old_addr:addr data;
          data)

let put_block t ino bkey data =
  if Bytes.length data <> t.prm.block_size then invalid_arg "Fs.put_block: wrong size";
  let key = (ino.Inode.inum, bkey) in
  let old_addr =
    match Bcache.find t.cache key with
    | Some _ -> Bcache.addr_of t.cache key
    | None -> lookup_addr t ino bkey
  in
  Bcache.put_dirty t.cache key ~old_addr data

let drop_block t ino bkey = Bcache.drop t.cache (ino.Inode.inum, bkey)

let set_pointer t ino bkey addr =
  match Bkey.parent ~ppb:(ppb t) bkey with
  | (Bkey.In_inode_direct _ | Bkey.In_inode_single | Bkey.In_inode_double | Bkey.In_inode_triple)
    as p ->
      Inode.set_inode_slot ino p addr;
      mark_inode_dirty t ino
  | Bkey.In_block (pbk, slot) ->
      let pdata = get_block_for_write t ino pbk in
      Bytesx.set_i32 pdata (slot * 4) addr

let zap_pointer t ino bkey =
  let addr = lookup_addr t ino bkey in
  let key = (ino.Inode.inum, bkey) in
  let cached_old =
    match Bcache.find t.cache key with
    | Some _ -> ( try Bcache.addr_of t.cache key with Not_found -> -1)
    | None -> -1
  in
  let victim = if addr >= 0 then addr else cached_old in
  if victim >= 0 then account t ~addr:victim (-t.prm.block_size);
  Bcache.drop t.cache key;
  if addr >= 0 then set_pointer t ino bkey (-1)

let repoint t ino bkey new_addr =
  let key = (ino.Inode.inum, bkey) in
  if Bcache.is_dirty t.cache key then invalid_arg "Fs.repoint: block is dirty";
  let old_addr = lookup_addr t ino bkey in
  if old_addr >= 0 then account t ~addr:old_addr (-t.prm.block_size);
  account t ~addr:new_addr t.prm.block_size;
  set_pointer t ino bkey new_addr;
  (match Bcache.find t.cache key with
  | Some _ -> Bcache.set_addr t.cache key new_addr
  | None -> ())

(* ---------- The segment writer ---------- *)

(* Blocks of an open partial: identity for the summary plus payload. *)
type staged =
  | File_block of Bcache.key
  | Inode_block of int list  (* inums packed in it *)

let seg_remaining t = t.prm.seg_blocks - t.cur_off

let advance_segment t =
  (* Retire the active segment and move to the reserved successor; the
     successor's replacement is chosen before any state changes, so
     running out of segments leaves the log untouched. *)
  let su = t.seg_usage in
  let fresh = t.next_seg in
  assert ((Segusage.get su fresh).state = Segusage.Clean);
  let successor =
    match Segusage.next_clean su ~after:fresh with
    | Some s when s <> fresh -> s
    | _ -> raise No_space
  in
  if (Segusage.get su t.cur_seg).state = Segusage.Active then
    Segusage.set_state su t.cur_seg Segusage.Dirty;
  Segusage.set_lastmod su t.cur_seg (now t);
  Segusage.set_state su fresh Segusage.Active;
  t.cur_seg <- fresh;
  t.cur_off <- 0;
  t.n_segs_written <- t.n_segs_written + 1;
  t.next_seg <- successor

type partial = {
  p_start : int;  (* offset of the summary block within the segment *)
  mutable p_blocks : (staged * Bytes.t) list;  (* reversed *)
  mutable p_nblocks : int;
  mutable p_sum_bytes : int;  (* running summary-space estimate *)
  mutable p_last_ino : int;  (* for finfo run-length grouping *)
}

let open_partial t =
  if seg_remaining t < 2 then advance_segment t;
  let p =
    {
      p_start = t.cur_off;
      p_blocks = [];
      p_nblocks = 0;
      p_sum_bytes = Summary.header_bytes;
      p_last_ino = -1;
    }
  in
  t.cur_off <- t.cur_off + 1;
  (* summary block *)
  p

let finfos_of_partial t p =
  let groups = ref [] in
  List.iter
    (fun (staged, _) ->
      match staged with
      | Inode_block _ -> ()
      | File_block (inum, bkey) -> (
          match !groups with
          | (i, blocks) :: rest when i = inum -> groups := (i, bkey :: blocks) :: rest
          | _ -> groups := (inum, [ bkey ]) :: !groups))
    (List.rev p.p_blocks);
  List.rev_map
    (fun (inum, blocks_rev) ->
      let e = Imap.get t.inode_map inum in
      let lastlength =
        match Hashtbl.find_opt t.itable inum with
        | Some ino when ino.Inode.size mod t.prm.block_size <> 0 ->
            ino.Inode.size mod t.prm.block_size
        | _ -> t.prm.block_size
      in
      {
        Summary.fi_ino = inum;
        fi_version = e.version;
        fi_lastlength = lastlength;
        fi_blocks = List.rev blocks_rev;
      })
    !groups

let close_partial t p =
  if p.p_blocks = [] then begin
    (* nothing was staged: return the reserved summary slot *)
    t.cur_off <- t.cur_off - 1;
    assert (t.cur_off = p.p_start)
  end
  else begin
    let bs = t.prm.block_size in
    let blocks = List.rev p.p_blocks in
    let ndata = List.length blocks in
    let data = Bytes.create (ndata * bs) in
    List.iteri (fun i (_, payload) -> Bytes.blit payload 0 data (i * bs) bs) blocks;
    let base = Layout.seg_base t.prm t.cur_seg + p.p_start in
    let inode_addrs =
      List.concat
        (List.mapi
           (fun i (staged, _) ->
             match staged with Inode_block _ -> [ base + 1 + i ] | File_block _ -> [])
           blocks)
    in
    let summary =
      {
        Summary.ss_next = Layout.seg_base t.prm t.next_seg;
        ss_create = now t;
        ss_serial = Int64.add t.serial 1L;
        ss_flags = 0;
        finfos = finfos_of_partial t p;
        inode_addrs;
      }
    in
    t.serial <- Int64.add t.serial 1L;
    let sum_block = Summary.serialize ~block_size:bs ~data_crc:(Crc32.bytes data) summary in
    let image = Bytes.cat sum_block data in
    charge_copy t (Bytes.length image);
    t.device.write ~blk:base ~data:image;
    t.n_partials <- t.n_partials + 1;
    (* summary blocks are not counted live: they die with their partial
       and the cleaner never needs to move them *)
    Segusage.set_lastmod t.seg_usage t.cur_seg (now t);
    (* now that bytes are on the device, clean the cache entries *)
    List.iteri
      (fun i (staged, _) ->
        match staged with
        | File_block key -> Bcache.mark_flushed t.cache key ~addr:(base + 1 + i)
        | Inode_block _ -> ())
      blocks
  end

(* Space the block's summary record needs. *)
let summary_cost p staged =
  match staged with
  | Inode_block _ -> 4
  | File_block (inum, _) -> if inum = p.p_last_ino then 4 else 16

(* Stage one block into the log, returning its assigned address. *)
let stage_block t pref staged payload =
  let p = !pref in
  let bs = t.prm.block_size in
  let need_new_partial =
    seg_remaining t < 1 || p.p_sum_bytes + summary_cost p staged > bs
  in
  let p =
    if need_new_partial then begin
      close_partial t p;
      let np = open_partial t in
      pref := np;
      np
    end
    else p
  in
  let addr = Layout.seg_base t.prm t.cur_seg + t.cur_off in
  t.cur_off <- t.cur_off + 1;
  p.p_sum_bytes <- p.p_sum_bytes + summary_cost p staged;
  (match staged with
  | File_block (inum, _) -> p.p_last_ino <- inum
  | Inode_block _ -> p.p_last_ino <- -1);
  p.p_blocks <- (staged, payload) :: p.p_blocks;
  p.p_nblocks <- p.p_nblocks + 1;
  addr

let segments_needed t extra_blocks =
  let bs_per_seg = Param.data_blocks_per_seg t.prm in
  let data = Bcache.dirty_count t.cache + extra_blocks in
  (* count the indirect blocks the dirty set can touch, exactly: every
     distinct ancestor of a dirty block may be dirtied by set_pointer *)
  let ancestors = Hashtbl.create 32 in
  List.iter
    (fun ((inum, bkey), _, _) ->
      let rec walk bkey =
        match Bkey.parent ~ppb:(ppb t) bkey with
        | Bkey.In_block (pbk, _) ->
            if not (Hashtbl.mem ancestors (inum, pbk)) then begin
              Hashtbl.replace ancestors (inum, pbk) ();
              walk pbk
            end
        | _ -> ()
      in
      walk bkey)
    (Bcache.dirty_entries t.cache);
  let indirect = Hashtbl.length ancestors in
  let ipb = Inode.per_block ~block_size:t.prm.block_size in
  (* every file with a dirty block gets its inode rewritten too *)
  let owners = Hashtbl.create 32 in
  List.iter
    (fun ((inum, _), _, _) -> Hashtbl.replace owners inum ())
    (Bcache.dirty_entries t.cache);
  Hashtbl.iter (fun inum () -> Hashtbl.replace owners inum ()) t.dirty_inodes;
  let ninodes = Hashtbl.length owners + Queue.length t.dead_inodes in
  let inode_blocks = ((ninodes + ipb - 1) / ipb) + 1 in
  let total = data + indirect + inode_blocks in
  let summaries = (total / bs_per_seg) + 2 in
  ((total + summaries + bs_per_seg - 1) / bs_per_seg) + 1

let ensure_space t =
  let needed = segments_needed t 0 in
  let reserve = if t.cleaning then 0 else t.prm.clean_reserve in
  (* the current segment's remaining room counts as free space *)
  let free () = nclean t + if seg_remaining t > 1 then 1 else 0 in
  (* under pressure, ask the hierarchy layer to give back read-only
     cache lines before declaring the disk full *)
  while free () - reserve < needed && t.hooks.reclaim () do
    ()
  done;
  if free () - reserve < needed then raise No_space

let flush t =
  if
    Hashtbl.length t.dirty_inodes > 0
    || Bcache.dirty_count t.cache > 0
    || not (Queue.is_empty t.dead_inodes)
  then begin
    if t.in_flush then failwith "Fs.flush: reentrant flush";
    ensure_space t;
    t.in_flush <- true;
    Fun.protect ~finally:(fun () -> t.in_flush <- false) @@ fun () ->
    let bs = t.prm.block_size in
    let pref = ref (open_partial t) in
    (* Levels 0-3: data blocks, then L1, L2, L3 indirect blocks. Each
       level's flush assigns addresses and dirties the parents that the
       next level picks up. *)
    for level = 0 to 3 do
      let entries =
        List.filter (fun ((_, bkey), _, _) -> Bkey.level bkey = level)
          (Bcache.dirty_entries t.cache)
      in
      let entries =
        List.sort (fun ((i1, b1), _, _) ((i2, b2), _, _) ->
            match compare i1 i2 with 0 -> Bkey.compare b1 b2 | c -> c)
          entries
      in
      List.iter
        (fun ((inum, bkey), data, old_addr) ->
          let ino = try get_inode t inum with Not_found ->
            failwith (Printf.sprintf "Fs.flush: dirty block of missing inode %d" inum)
          in
          let addr = stage_block t pref (File_block (inum, bkey)) data in
          if old_addr >= 0 then account t ~addr:old_addr (-bs);
          account t ~addr bs;
          set_pointer t ino bkey addr)
        entries
    done;
    (* Inode blocks: pack dirty inodes (and zero-nlink corpses, which
       roll-forward uses to replay deletions) and point the inode map at
       the live ones. *)
    let dirty_inums =
      List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_inodes [])
    in
    let live = List.map (fun inum -> (get_inode t inum, true)) dirty_inums in
    let dead =
      let acc = ref [] in
      while not (Queue.is_empty t.dead_inodes) do
        acc := (Queue.pop t.dead_inodes, false) :: !acc
      done;
      List.rev !acc
    in
    let ipb = Inode.per_block ~block_size:bs in
    let rec pack = function
      | [] -> ()
      | batch ->
          let take = min ipb (List.length batch) in
          let chunk = List.filteri (fun i _ -> i < take) batch in
          let rest = List.filteri (fun i _ -> i >= take) batch in
          let block = Inode.pack_block ~block_size:bs (List.map fst chunk) in
          let inums = List.map (fun (ino, _) -> ino.Inode.inum) chunk in
          let addr = stage_block t pref (Inode_block inums) block in
          (* inode blocks are accounted per inode, matching the per-inode
             decrement when an inode later moves out or is freed *)
          account t ~addr (Inode.isize * List.length (List.filter snd chunk));
          List.iter
            (fun (ino, is_live) ->
              if is_live then begin
                let e = Imap.get t.inode_map ino.Inode.inum in
                if e.addr > 0 then account t ~addr:e.addr (-Inode.isize);
                Imap.set_addr t.inode_map ino.Inode.inum addr
              end)
            chunk;
          pack rest
    in
    pack (live @ dead);
    Hashtbl.reset t.dirty_inodes;
    close_partial t !pref
  end

let maybe_flush t =
  if Bcache.dirty_count t.cache >= Param.data_blocks_per_seg t.prm then flush t

(* ---------- Ifile serialization & checkpoint ---------- *)

let su_blocks t = Segusage.nblocks ~nsegs:t.prm.nsegs ~block_size:t.prm.block_size
let im_blocks t = Imap.nblocks ~max_inodes:t.prm.max_inodes ~block_size:t.prm.block_size

let serialize_tables t =
  let bs = t.prm.block_size in
  let ifile = get_inode t ifile_inum in
  let su = su_blocks t in
  List.iter
    (fun idx ->
      put_block t ifile (Bkey.Data idx) (Segusage.serialize_block t.seg_usage ~block_size:bs idx))
    (Segusage.dirty_blocks t.seg_usage ~block_size:bs);
  List.iter
    (fun idx ->
      put_block t ifile (Bkey.Data (su + idx))
        (Imap.serialize_block t.inode_map ~block_size:bs idx))
    (Imap.dirty_blocks t.inode_map ~block_size:bs);
  Segusage.clear_dirty t.seg_usage;
  Imap.clear_dirty t.inode_map;
  mark_inode_dirty t ifile

let write_checkpoint_region t =
  let cp =
    {
      Superblock.serial = t.serial;
      timestamp = now t;
      ifile_inode_addr = (Imap.get t.inode_map ifile_inum).addr;
      cur_seg = t.cur_seg;
      cur_off = t.cur_off;
      next_seg = t.next_seg;
      tvol = t.tvol;
      tseg_in_vol = t.tseg_in_vol;
    }
  in
  let block = Superblock.serialize_checkpoint ~block_size:t.prm.block_size cp in
  t.device.write ~blk:(Layout.checkpoint_addr t.cp_slot) ~data:block;
  t.cp_slot <- 1 - t.cp_slot

let checkpoint t =
  t.hooks.pre_checkpoint t;
  (* checkpoints may draw on the cleaner's reserve: that bound exists
     precisely so the metadata flush always fits *)
  let was_cleaning = t.cleaning in
  t.cleaning <- true;
  Fun.protect ~finally:(fun () -> t.cleaning <- was_cleaning) @@ fun () ->
  flush t;
  serialize_tables t;
  flush t;
  write_checkpoint_region t

let unmount t =
  checkpoint t;
  Hashtbl.reset t.itable

(* ---------- Segment pool for HighLight ---------- *)

let set_cache_floor t floor = t.cache_floor <- max 0 (min floor (t.prm.nsegs - 1))

let alloc_clean_segment t ~for_cache =
  (* cache lines may dig nearly to the bottom: a demand fetch is a
     liveness requirement and staging is how a full disk frees itself;
     the static line cap bounds the total, and the log takes lines back
     through the reclaim hook when it starves *)
  ignore for_cache;
  if nclean t <= 2 then None
  else
    let rec pick after tries =
      if tries > t.prm.nsegs then None
      else
        match Segusage.next_clean t.seg_usage ~after with
        | None -> None
        | Some s when s = t.next_seg || s = t.cur_seg || s < t.cache_floor ->
            if s <= after && tries > 0 then None (* wrapped below the floor *)
            else pick s (tries + 1)
        | Some s ->
            Segusage.set_state t.seg_usage s Segusage.Cached;
            Some s
    in
    pick (max (t.cache_floor - 1) t.cur_seg) 0

let release_segment t seg =
  Segusage.set_state t.seg_usage seg Segusage.Clean;
  Segusage.set_cache_tag t.seg_usage seg (-1);
  t.hooks.segments_freed ()

let note_segments_freed t = t.hooks.segments_freed ()

let write_superblock t =
  t.device.write ~blk:Layout.superblock_addr
    ~data:
      (Superblock.serialize ~block_size:t.prm.block_size
         {
           Superblock.block_size = t.prm.block_size;
           seg_blocks = t.prm.seg_blocks;
           nsegs = t.prm.nsegs;
           max_inodes = t.prm.max_inodes;
           tertiary = t.tertiary_cfg;
         })

let grow t ~added_segs ?new_dev () =
  if added_segs <= 0 then invalid_arg "Fs.grow";
  let prm' = { t.prm with Param.nsegs = t.prm.nsegs + added_segs } in
  let dev = Option.value new_dev ~default:t.device in
  if dev.Dev.block_size <> t.prm.block_size then invalid_arg "Fs.grow: block size mismatch";
  if dev.Dev.nblocks < Layout.disk_blocks prm' then invalid_arg "Fs.grow: device too small";
  (* quiesce on the old geometry, then extend *)
  checkpoint t;
  t.device <- dev;
  Segusage.grow t.seg_usage ~by:added_segs ~seg_bytes:(Param.seg_bytes t.prm);
  t.prm <- prm';
  (* the segment-usage table grew, which shifts the inode map's position
     inside the ifile: rewrite the whole ifile from the in-core tables *)
  Segusage.mark_all_dirty t.seg_usage;
  Imap.mark_all_dirty t.inode_map;
  let ifile = get_inode t ifile_inum in
  ifile.Inode.size <- (su_blocks t + im_blocks t) * t.prm.block_size;
  mark_inode_dirty t ifile;
  write_superblock t;
  checkpoint t

(* ---------- mkfs / mount / recovery ---------- *)

let make_state engine prm device tertiary_cfg =
  Param.validate prm;
  if device.Dev.block_size <> prm.block_size then invalid_arg "Fs: device block size mismatch";
  if device.Dev.nblocks < Layout.disk_blocks prm then invalid_arg "Fs: device too small";
  {
    engine;
    prm;
    device;
    tertiary_cfg;
    inode_map = Imap.create ~max_inodes:prm.max_inodes;
    seg_usage = Segusage.create ~nsegs:prm.nsegs ~seg_bytes:(Param.seg_bytes prm);
    cache = Bcache.create ~cap:prm.bcache_blocks;
    itable = Hashtbl.create 64;
    dirty_inodes = Hashtbl.create 16;
    dead_inodes = Queue.create ();
    cur_seg = 0;
    cur_off = 0;
    next_seg = 1;
    serial = 0L;
    cp_slot = 0;
    tvol = 0;
    tseg_in_vol = 0;
    hooks = no_hooks;
    cleaning = false;
    in_flush = false;
    n_segs_written = 0;
    n_partials = 0;
    cache_floor = 0;
  }

let mkfs engine prm device ?tertiary () =
  let t = make_state engine prm device tertiary in
  Segusage.set_state t.seg_usage 0 Segusage.Active;
  (* ifile *)
  Imap.alloc_specific t.inode_map ifile_inum;
  let ifile =
    Inode.create ~inum:ifile_inum ~kind:Inode.Reg
      ~version:(Imap.get t.inode_map ifile_inum).version ~now:(now t)
  in
  ifile.Inode.size <- (su_blocks t + im_blocks t) * prm.block_size;
  Hashtbl.replace t.itable ifile_inum ifile;
  mark_inode_dirty t ifile;
  (* root directory *)
  Imap.alloc_specific t.inode_map root_inum;
  let root =
    Inode.create ~inum:root_inum ~kind:Inode.Dir
      ~version:(Imap.get t.inode_map root_inum).version ~now:(now t)
  in
  root.Inode.nlink <- 2;
  root.Inode.size <- prm.block_size;
  Hashtbl.replace t.itable root_inum root;
  mark_inode_dirty t root;
  let dirblock = Bytes.make prm.block_size '\000' in
  ignore (Dirent.add dirblock "." root_inum);
  ignore (Dirent.add dirblock ".." root_inum);
  put_block t root (Bkey.Data 0) dirblock;
  (* tsegfile when a tertiary hierarchy is configured *)
  (match tertiary with
  | None -> ()
  | Some _ ->
      Imap.alloc_specific t.inode_map tseg_inum;
      let tf =
        Inode.create ~inum:tseg_inum ~kind:Inode.Reg
          ~version:(Imap.get t.inode_map tseg_inum).version ~now:(now t)
      in
      Hashtbl.replace t.itable tseg_inum tf;
      mark_inode_dirty t tf);
  Segusage.mark_all_dirty t.seg_usage;
  Imap.mark_all_dirty t.inode_map;
  write_superblock t;
  checkpoint t;
  t

let apply_inode_block t addr block =
  Inode.iter_block block (fun ino ->
      let inum = ino.Inode.inum in
      if inum <> ifile_inum && inum <> tseg_inum && inum < Imap.max_inodes t.inode_map then begin
        if ino.Inode.nlink = 0 then begin
          let e = Imap.get t.inode_map inum in
          if e.addr <> -1 then begin
            Imap.set_addr t.inode_map inum (-1);
            (* keep version moving so stale summaries lose liveness checks *)
            e.version <- max e.version ino.Inode.version
          end
        end
        else begin
          Imap.set_addr t.inode_map inum addr;
          (Imap.get t.inode_map inum).version <- ino.Inode.version;
          Hashtbl.remove t.itable inum
        end
      end)

let roll_forward t cp =
  let bs = t.prm.block_size in
  let expected = ref (Int64.add cp.Superblock.serial 1L) in
  let seg = ref cp.cur_seg and off = ref cp.cur_off and nseg = ref cp.next_seg in
  if !off >= t.prm.seg_blocks - 1 then begin
    seg := cp.next_seg;
    off := 0
  end;
  let continue_scan = ref true in
  while !continue_scan do
    let base = Layout.seg_base t.prm !seg in
    let sum_block = t.device.read ~blk:(base + !off) ~count:1 in
    match Summary.deserialize sum_block with
    | Error _ -> continue_scan := false
    | Ok (sum, datasum) ->
        if sum.Summary.ss_serial <> !expected then continue_scan := false
        else begin
          let nb = Summary.nblocks_total sum in
          if !off + 1 + nb > t.prm.seg_blocks then continue_scan := false
          else begin
            let data = if nb = 0 then Bytes.empty else t.device.read ~blk:(base + !off + 1) ~count:nb in
            if nb > 0 && Crc32.bytes data <> datasum then continue_scan := false
            else begin
              (* intact partial: apply *)
              t.serial <- sum.Summary.ss_serial;
              if (Segusage.get t.seg_usage !seg).state = Segusage.Clean then
                Segusage.set_state t.seg_usage !seg Segusage.Dirty
              else if (Segusage.get t.seg_usage !seg).state = Segusage.Cached then
                Segusage.set_state t.seg_usage !seg Segusage.Dirty;
              Segusage.add_live t.seg_usage !seg (nb * bs);
              List.iter
                (fun inode_addr ->
                  let rel = inode_addr - (base + !off + 1) in
                  if rel >= 0 && rel < nb then
                    apply_inode_block t inode_addr (Bytes.sub data (rel * bs) bs))
                sum.Summary.inode_addrs;
              expected := Int64.add !expected 1L;
              off := !off + 1 + nb;
              (match Layout.seg_of_addr t.prm sum.Summary.ss_next with
              | Some s -> nseg := s
              | None -> ());
              if !off >= t.prm.seg_blocks - 1 then begin
                seg := !nseg;
                off := 0
              end
            end
          end
        end
  done;
  t.cur_seg <- !seg;
  t.cur_off <- !off;
  t.next_seg <- !nseg;
  (match (Segusage.get t.seg_usage !seg).state with
  | Segusage.Clean | Segusage.Dirty -> Segusage.set_state t.seg_usage !seg Segusage.Active
  | Segusage.Active -> ()
  | Segusage.Cached -> Segusage.set_state t.seg_usage !seg Segusage.Active);
  if (Segusage.get t.seg_usage t.next_seg).state <> Segusage.Clean then begin
    match Segusage.next_clean t.seg_usage ~after:t.cur_seg with
    | Some s -> t.next_seg <- s
    | None -> raise No_space
  end

let mount engine ?(cpu = Param.cpu_1993) ?bcache_blocks device =
  let sb_block = device.Dev.read ~blk:Layout.superblock_addr ~count:1 in
  let sb =
    match Superblock.deserialize sb_block with
    | Ok sb -> sb
    | Error msg -> failwith ("Fs.mount: " ^ msg)
  in
  let prm =
    {
      Param.block_size = sb.Superblock.block_size;
      seg_blocks = sb.seg_blocks;
      nsegs = sb.nsegs;
      max_inodes = sb.max_inodes;
      bcache_blocks = Option.value bcache_blocks ~default:800;
      clean_reserve = (Param.default ~nsegs:sb.nsegs).clean_reserve;
      cpu;
    }
  in
  let t = make_state engine prm device sb.Superblock.tertiary in
  let cp0 = Superblock.deserialize_checkpoint (device.Dev.read ~blk:(Layout.checkpoint_addr 0) ~count:1) in
  let cp1 = Superblock.deserialize_checkpoint (device.Dev.read ~blk:(Layout.checkpoint_addr 1) ~count:1) in
  let cp =
    match (cp0, cp1) with
    | Some a, Some b -> if a.Superblock.serial >= b.Superblock.serial then a else b
    | Some a, None -> a
    | None, Some b -> b
    | None, None -> failwith "Fs.mount: no valid checkpoint"
  in
  t.cp_slot <- (match (cp0, cp1) with
    | Some a, Some b -> if a.Superblock.serial >= b.Superblock.serial then 1 else 0
    | Some _, None -> 1
    | _ -> 0);
  t.serial <- cp.Superblock.serial;
  t.tvol <- cp.Superblock.tvol;
  t.tseg_in_vol <- cp.Superblock.tseg_in_vol;
  (* load the ifile inode, then the tables it stores *)
  let iblock = device.Dev.read ~blk:cp.Superblock.ifile_inode_addr ~count:1 in
  let ifile =
    match Inode.find_in_block iblock ~inum:ifile_inum with
    | Some ino -> ino
    | None -> failwith "Fs.mount: ifile inode not found"
  in
  Hashtbl.replace t.itable ifile_inum ifile;
  Imap.alloc_specific t.inode_map ifile_inum;
  let bs = prm.block_size in
  for idx = 0 to su_blocks t - 1 do
    match get_block t ifile (Bkey.Data idx) with
    | Some b -> Segusage.load_block t.seg_usage ~block_size:bs idx b
    | None -> failwith "Fs.mount: ifile hole in segment usage table"
  done;
  (* the imap load overwrites the placeholder alloc of the ifile inum *)
  for idx = 0 to im_blocks t - 1 do
    match get_block t ifile (Bkey.Data (su_blocks t + idx)) with
    | Some b -> Imap.load_block t.inode_map ~block_size:bs idx b
    | None -> failwith "Fs.mount: ifile hole in inode map"
  done;
  Segusage.clear_dirty t.seg_usage;
  Imap.clear_dirty t.inode_map;
  t.cur_seg <- cp.Superblock.cur_seg;
  t.cur_off <- cp.Superblock.cur_off;
  t.next_seg <- cp.Superblock.next_seg;
  roll_forward t cp;
  t

(* The crash half of the recovery harness: capture the raw platter state
   at this instant, deliberately NOT flushing dirty buffers or writing a
   checkpoint first — that is exactly what a power cut leaves behind.
   Mounting the copy exercises checkpoint selection and roll-forward
   over whatever torn log tail the crash point produced. *)
let crash_image t store =
  if Device.Blockstore.block_size store <> t.prm.block_size then
    invalid_arg "Fs.crash_image: store block size differs from the file system's";
  Device.Blockstore.copy store

let drop_caches t =
  flush t;
  Bcache.invalidate_clean t.cache;
  let doomed =
    Hashtbl.fold
      (fun inum _ acc -> if inum = ifile_inum || inum = tseg_inum then acc else inum :: acc)
      t.itable []
  in
  List.iter (Hashtbl.remove t.itable) doomed

(* ---------- Invariant audit ---------- *)

let check t =
  let problems = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let counted = ref 0 in
  Segusage.iter t.seg_usage (fun seg e ->
      if e.state = Segusage.Clean then incr counted;
      if e.live_bytes > Param.seg_bytes t.prm then
        complain "segment %d live bytes %d exceed capacity" seg e.live_bytes;
      if e.state = Segusage.Clean && e.live_bytes <> 0 then
        complain "clean segment %d has %d live bytes" seg e.live_bytes);
  if !counted <> nclean t then
    complain "clean count drifted: counted %d tracked %d" !counted (nclean t);
  if t.cur_off > t.prm.seg_blocks then complain "cur_off %d beyond segment" t.cur_off;
  if (Segusage.get t.seg_usage t.cur_seg).state <> Segusage.Active then
    complain "current segment %d not active" t.cur_seg;
  (match (Segusage.get t.seg_usage t.next_seg).state with
  | Segusage.Clean -> ()
  | st ->
      complain "reserved next segment %d is %s" t.next_seg
        (Format.asprintf "%a" Segusage.pp_state st));
  (try ignore (get_inode t root_inum)
   with _ -> complain "root inode unreadable");
  List.rev !problems
