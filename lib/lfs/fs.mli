(** Core log-structured file system: the segmented log, the segment
    writer, block mapping through inodes and indirect blocks, space
    accounting, checkpoints and roll-forward recovery.

    Higher layers build on the exposed primitives: {!File} and {!Dir}
    provide the POSIX-ish operations, {!Cleaner} reclaims segments, and
    the HighLight library grafts on tertiary storage through the
    {!hooks} (accounting for blocks that live outside the disk's
    segments) and through a {!Dev.t} that routes tertiary addresses to
    its segment cache. *)

type t

exception No_space
(** Raised before any mutation when the log has too few clean segments
    to absorb the pending flush; run the cleaner and retry. *)

(** HighLight integration points. *)
type hooks = {
  is_foreign : int -> bool;
      (** True for addresses outside the disk's log segments (tertiary). *)
  account_foreign : addr:int -> int -> unit;
      (** Live-bytes delta for a foreign block (routed to the tsegfile). *)
  pre_checkpoint : t -> unit;
      (** Runs at the start of every checkpoint, while the log can still
          absorb writes (HighLight serializes the tsegfile here). *)
  reclaim : unit -> bool;
      (** Called when the log is out of clean segments before giving up:
          return true after freeing at least one (HighLight ejects a
          read-only cache line). *)
  segments_freed : unit -> unit;
      (** Fired whenever log segments return to the clean pool
          ({!release_segment}, a cleaner pass) — processes sleeping on a
          cache-line allocation use it instead of polling. *)
}

val no_hooks : hooks

(** {1 Lifecycle} *)

val mkfs :
  Sim.Engine.t -> Param.t -> Dev.t -> ?tertiary:Superblock.tertiary -> unit -> t
(** Formats the device and returns a mounted file system with an empty
    root directory. The initial state is checkpointed. *)

val mount :
  Sim.Engine.t -> ?cpu:Param.cpu -> ?bcache_blocks:int -> Dev.t -> t
(** Reads the superblock, loads the newest valid checkpoint and rolls
    the log forward to the last intact partial segment. *)

val set_hooks : t -> hooks -> unit

val checkpoint : t -> unit
(** Flushes everything and writes a checkpoint region; after this,
    mount needs no roll-forward. *)

val unmount : t -> unit
(** [checkpoint] + drops volatile state. The [t] must not be used
    afterwards. *)

(** {1 Geometry and state access} *)

val param : t -> Param.t
val engine : t -> Sim.Engine.t
val dev : t -> Dev.t
val tertiary_config : t -> Superblock.tertiary option
val imap : t -> Imap.t
val seguse : t -> Segusage.t
val bcache : t -> Bcache.t
val cur_seg : t -> int
val cur_off : t -> int
val next_seg : t -> int
val serial : t -> int64
val now : t -> float

val tvol : t -> int
val tseg_in_vol : t -> int
val set_tertiary_cursor : t -> tvol:int -> tseg_in_vol:int -> unit
(** HighLight's tertiary allocation cursor, persisted in checkpoints. *)

(** {1 Inodes} *)

val get_inode : t -> int -> Inode.t
(** Loads through the inode map; raises [Not_found] for free inums. *)

val alloc_inode : t -> kind:Inode.kind -> Inode.t
val mark_inode_dirty : t -> Inode.t -> unit
val free_inode : t -> int -> unit
(** Releases the inum (blocks must already be freed — see
    {!File.free_blocks}). *)

val touch_atime : t -> int -> unit

(** {1 Block access} *)

val lookup_addr : t -> Inode.t -> Bkey.t -> int
(** Current address of a block, walking indirect blocks as needed;
    -1 for holes. *)

val get_block : t -> Inode.t -> Bkey.t -> Bytes.t option
(** Block content through the buffer cache; [None] for a hole. *)

val get_block_for_write : t -> Inode.t -> Bkey.t -> Bytes.t
(** Like {!get_block} but materializes holes and marks the block dirty.
    The caller mutates the returned bytes in place. *)

val put_block : t -> Inode.t -> Bkey.t -> Bytes.t -> unit
(** Replaces a block's content wholesale (it becomes dirty). *)

val drop_block : t -> Inode.t -> Bkey.t -> unit
val zap_pointer : t -> Inode.t -> Bkey.t -> unit
(** Frees one block: accounts its space away and clears its parent
    pointer (truncate path). *)

val repoint : t -> Inode.t -> Bkey.t -> int -> unit
(** Atomically moves a block's identity to a new address: updates the
    parent pointer, re-accounts live bytes, and refreshes the cache
    entry's address. Refuses dirty blocks. This is the kernel half of
    [lfs_migratev]. *)

val account : t -> addr:int -> int -> unit
(** Live-bytes delta for any address (disk segment or foreign). *)

(** {1 The log} *)

val flush : t -> unit
(** Writes all dirty blocks and inodes to the log in level order
    (data, then indirect blocks, then inodes). May raise {!No_space}. *)

val maybe_flush : t -> unit
(** Flushes when about a segment's worth of dirty data has gathered. *)

val alloc_clean_segment : t -> for_cache:bool -> int option
(** Takes a clean segment out of the allocation pool, leaving it in
    [Cached] state. With [for_cache:true] (demand-fetch cache lines) it
    refuses to dip into the cleaner's reserve; with [for_cache:false]
    (migration staging) it digs nearly to the bottom, because staging is
    how a full disk frees itself. *)

val release_segment : t -> int -> unit
(** Returns a segment to the clean pool and fires the [segments_freed]
    hook. *)

val note_segments_freed : t -> unit
(** Fires the [segments_freed] hook directly — used by the cleaner,
    which frees segments without going through {!release_segment}. *)

val grow : t -> added_segs:int -> ?new_dev:Dev.t -> unit -> unit
(** On-line storage addition (paper §6.4): appends [added_segs] fresh
    log segments (optionally switching to a larger device, e.g. a
    concatenation including the new disk), extends the ifile's segment
    usage table, rewrites the superblock, and checkpoints. In HighLight
    the new segments claim part of the address-space dead zone — use
    {!Highlight.Hl.grow_disk}, which also adjusts the address map. *)

val set_cache_floor : t -> int -> unit
(** Restricts {!alloc_clean_segment} to segments at or above the given
    index — e.g. to place HighLight's staging/cache lines on a separate
    spindle of a concatenated disk farm (the paper's Table 6 staging
    variants). *)

val set_cleaning : t -> bool -> unit
(** While true, flushes may consume the reserve (cleaner privilege). *)

val charge_cpu : t -> float -> unit
val charge_copy : t -> int -> unit
(** CPU-time charges from the {!Param.cpu} model. *)

(** {1 Introspection} *)

val nclean : t -> int
val segments_written : t -> int
val partials_written : t -> int
val iter_files : t -> (int -> Imap.entry -> unit) -> unit
(** All allocated inums including the reserved ones. *)

val crash_image : t -> Device.Blockstore.t -> Device.Blockstore.t
(** [crash_image t store] snapshots the blockstore backing [t] as a
    power-cut would leave it: a deep copy taken {e without} flushing
    dirty buffers or checkpointing, so the copy holds the last
    checkpoint plus whatever log tail had reached the device — possibly
    torn. Remount the copy (through {!mount}, or {!Highlight.Hl.mount}
    with the surviving jukeboxes) to exercise roll-forward; the running
    [t] is undisturbed. Raises [Invalid_argument] if [store]'s block
    size differs from the file system's. *)

val drop_caches : t -> unit
(** Flushes, then empties the buffer cache and the in-core inode table
    (the reserved ifile/tsegfile inodes stay pinned) — the state of a
    newly mounted file system, as the paper's access-delay experiment
    requires. Callers must re-resolve any [Inode.t] they hold. *)

val check : t -> string list
(** Cheap invariant audit (testing): returns human-readable violations,
    empty when consistent. *)
