open Util

type entry = { mutable addr : int; mutable version : int; mutable atime : float }

type t = {
  entries : entry array;
  dirty : (int, unit) Hashtbl.t;  (* imap block index -> dirty *)
  mutable nalloc : int;
  mutable free_hint : int;
}

let first_regular_inum = 4
let entry_bytes = 16
let entries_per_block ~block_size = block_size / entry_bytes
let nblocks ~max_inodes ~block_size =
  (max_inodes + entries_per_block ~block_size - 1) / entries_per_block ~block_size

let create ~max_inodes =
  {
    entries = Array.init max_inodes (fun _ -> { addr = -1; version = 0; atime = 0.0 });
    dirty = Hashtbl.create 16;
    nalloc = 0;
    free_hint = first_regular_inum;
  }

let max_inodes t = Array.length t.entries

let get t inum =
  if inum < 0 || inum >= Array.length t.entries then invalid_arg "Imap.get: bad inum";
  t.entries.(inum)

let is_allocated t inum = (get t inum).addr <> -1 || inum = 0

(* The block index is geometry-dependent; dirtiness is tracked at a
   nominal 4 KB block size and re-derived if serialized differently.
   We simply record the inum and compute blocks on demand. *)
let touch t inum = Hashtbl.replace t.dirty inum ()

let set_addr t inum addr =
  let e = get t inum in
  e.addr <- addr;
  touch t inum

let set_atime t inum atime =
  let e = get t inum in
  e.atime <- atime;
  touch t inum

let alloc t =
  let n = Array.length t.entries in
  let rec find i steps =
    if steps > n then failwith "Imap.alloc: inode map full"
    else
      let i = if i >= n then first_regular_inum else i in
      if t.entries.(i).addr = -1 then i else find (i + 1) (steps + 1)
  in
  let inum = find t.free_hint 0 in
  let e = t.entries.(inum) in
  e.version <- e.version + 1;
  e.addr <- 0 (* allocated but not yet on disk: distinct from -1 *);
  t.free_hint <- inum + 1;
  t.nalloc <- t.nalloc + 1;
  touch t inum;
  inum

let alloc_specific t inum =
  if inum < 1 || inum >= first_regular_inum then
    invalid_arg "Imap.alloc_specific: not a reserved inum";
  let e = get t inum in
  if e.addr <> -1 then invalid_arg "Imap.alloc_specific: already allocated";
  e.version <- e.version + 1;
  e.addr <- 0;
  t.nalloc <- t.nalloc + 1;
  touch t inum

let free t inum =
  let e = get t inum in
  if e.addr = -1 then invalid_arg "Imap.free: not allocated";
  e.addr <- -1;
  e.version <- e.version + 1;
  t.nalloc <- t.nalloc - 1;
  if inum < t.free_hint && inum >= first_regular_inum then t.free_hint <- inum;
  touch t inum

let nfiles t = t.nalloc

let iter_allocated t f =
  Array.iteri (fun inum e -> if e.addr <> -1 then f inum e) t.entries

let serialize_block t ~block_size idx =
  let epb = entries_per_block ~block_size in
  let b = Bytes.make block_size '\000' in
  let base = idx * epb in
  for i = 0 to epb - 1 do
    let inum = base + i in
    if inum < Array.length t.entries then begin
      let e = t.entries.(inum) in
      let off = i * entry_bytes in
      Bytesx.set_i32 b off e.addr;
      Bytesx.set_u32 b (off + 4) e.version;
      Bytesx.set_u64 b (off + 8) (Int64.bits_of_float e.atime)
    end
  done;
  b

let load_block t ~block_size idx b =
  let epb = entries_per_block ~block_size in
  let base = idx * epb in
  for i = 0 to epb - 1 do
    let inum = base + i in
    if inum < Array.length t.entries then begin
      let e = t.entries.(inum) in
      let off = i * entry_bytes in
      let was_alloc = e.addr <> -1 in
      e.addr <- Bytesx.get_i32 b off;
      e.version <- Bytesx.get_u32 b (off + 4);
      e.atime <- Int64.float_of_bits (Bytesx.get_u64 b (off + 8));
      let is_alloc = e.addr <> -1 in
      if is_alloc && not was_alloc then t.nalloc <- t.nalloc + 1
      else if was_alloc && not is_alloc then t.nalloc <- t.nalloc - 1
    end
  done

let dirty_blocks t ~block_size =
  let epb = entries_per_block ~block_size in
  let blocks = Hashtbl.create 8 in
  Hashtbl.iter (fun inum () -> Hashtbl.replace blocks (inum / epb) ()) t.dirty;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) blocks [])

let mark_all_dirty t =
  for inum = 0 to Array.length t.entries - 1 do
    touch t inum
  done

let clear_dirty t = Hashtbl.reset t.dirty
