open Util

type state = Clean | Dirty | Active | Cached

type entry = {
  mutable state : state;
  mutable live_bytes : int;
  mutable lastmod : float;
  mutable avail_bytes : int;
  mutable cache_tag : int;
}

type t = {
  mutable entries : entry array;
  dirty : (int, unit) Hashtbl.t;  (* entry index *)
  mutable clean_count : int;
}

let entry_bytes = 32
let entries_per_block ~block_size = block_size / entry_bytes
let nblocks ~nsegs ~block_size =
  (nsegs + entries_per_block ~block_size - 1) / entries_per_block ~block_size

let create ~nsegs ~seg_bytes =
  {
    entries =
      Array.init nsegs (fun _ ->
          { state = Clean; live_bytes = 0; lastmod = 0.0; avail_bytes = seg_bytes; cache_tag = -1 });
    dirty = Hashtbl.create 16;
    clean_count = nsegs;
  }

let nsegs t = Array.length t.entries

let grow t ~by ~seg_bytes =
  if by <= 0 then invalid_arg "Segusage.grow";
  let fresh =
    Array.init by (fun _ ->
        { state = Clean; live_bytes = 0; lastmod = 0.0; avail_bytes = seg_bytes; cache_tag = -1 })
  in
  let old = Array.length t.entries in
  t.entries <- Array.append t.entries fresh;
  t.clean_count <- t.clean_count + by;
  for seg = old to old + by - 1 do
    Hashtbl.replace t.dirty seg ()
  done

let get t seg =
  if seg < 0 || seg >= Array.length t.entries then invalid_arg "Segusage.get: bad segment";
  t.entries.(seg)

let touch t seg = Hashtbl.replace t.dirty seg ()

let set_state t seg state =
  let e = get t seg in
  if e.state = Clean && state <> Clean then t.clean_count <- t.clean_count - 1
  else if e.state <> Clean && state = Clean then t.clean_count <- t.clean_count + 1;
  e.state <- state;
  if state = Clean then begin
    e.live_bytes <- 0;
    e.cache_tag <- -1
  end;
  touch t seg

let add_live t seg delta =
  let e = get t seg in
  e.live_bytes <- max 0 (e.live_bytes + delta);
  touch t seg

let set_lastmod t seg v =
  (get t seg).lastmod <- v;
  touch t seg

let set_cache_tag t seg v =
  (get t seg).cache_tag <- v;
  touch t seg

let nclean t = t.clean_count
let live_total t = Array.fold_left (fun acc e -> acc + e.live_bytes) 0 t.entries

let next_clean t ~after =
  let n = Array.length t.entries in
  let rec go i steps =
    if steps >= n then None
    else
      let i = i mod n in
      if t.entries.(i).state = Clean then Some i else go (i + 1) (steps + 1)
  in
  go (after + 1) 0

let iter t f = Array.iteri f t.entries

let state_code = function Clean -> 0 | Dirty -> 1 | Active -> 2 | Cached -> 3

let state_of_code = function
  | 0 -> Clean
  | 1 -> Dirty
  | 2 -> Active
  | 3 -> Cached
  | c -> invalid_arg (Printf.sprintf "Segusage: bad state code %d" c)

let serialize_block t ~block_size idx =
  let epb = entries_per_block ~block_size in
  let b = Bytes.make block_size '\000' in
  let base = idx * epb in
  for i = 0 to epb - 1 do
    let seg = base + i in
    if seg < Array.length t.entries then begin
      let e = t.entries.(seg) in
      let off = i * entry_bytes in
      Bytesx.set_u16 b off (state_code e.state);
      Bytesx.set_u32 b (off + 4) e.live_bytes;
      Bytesx.set_u64 b (off + 8) (Int64.bits_of_float e.lastmod);
      Bytesx.set_u32 b (off + 16) e.avail_bytes;
      Bytesx.set_i32 b (off + 20) e.cache_tag
    end
  done;
  b

let load_block t ~block_size idx b =
  let epb = entries_per_block ~block_size in
  let base = idx * epb in
  for i = 0 to epb - 1 do
    let seg = base + i in
    if seg < Array.length t.entries then begin
      let e = t.entries.(seg) in
      let off = i * entry_bytes in
      let new_state = state_of_code (Bytesx.get_u16 b off) in
      if e.state = Clean && new_state <> Clean then t.clean_count <- t.clean_count - 1
      else if e.state <> Clean && new_state = Clean then t.clean_count <- t.clean_count + 1;
      e.state <- new_state;
      e.live_bytes <- Bytesx.get_u32 b (off + 4);
      e.lastmod <- Int64.float_of_bits (Bytesx.get_u64 b (off + 8));
      e.avail_bytes <- Bytesx.get_u32 b (off + 16);
      e.cache_tag <- Bytesx.get_i32 b (off + 20)
    end
  done

let dirty_blocks t ~block_size =
  let epb = entries_per_block ~block_size in
  let blocks = Hashtbl.create 8 in
  Hashtbl.iter (fun seg () -> Hashtbl.replace blocks (seg / epb) ()) t.dirty;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) blocks [])

let mark_all_dirty t =
  for seg = 0 to Array.length t.entries - 1 do
    touch t seg
  done

let clear_dirty t = Hashtbl.reset t.dirty

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with Clean -> "clean" | Dirty -> "dirty" | Active -> "active" | Cached -> "cached")
