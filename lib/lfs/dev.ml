type t = {
  nblocks : int;
  block_size : int;
  read : blk:int -> count:int -> Bytes.t;
  write : blk:int -> data:Bytes.t -> unit;
  read_into : blk:int -> count:int -> dst:Bytes.t -> dst_off:int -> unit;
  write_from : blk:int -> src:Bytes.t -> src_off:int -> count:int -> unit;
}

let of_disk d =
  {
    nblocks = Device.Disk.nblocks d;
    block_size = Device.Disk.block_size d;
    read = (fun ~blk ~count -> Device.Disk.read d ~blk ~count);
    write = (fun ~blk ~data -> Device.Disk.write d ~blk data);
    read_into = (fun ~blk ~count ~dst ~dst_off -> Device.Disk.read_into d ~blk ~count ~dst ~dst_off);
    write_from =
      (fun ~blk ~src ~src_off ~count -> Device.Disk.write_from d ~blk ~src ~src_off ~count);
  }

let of_concat c =
  {
    nblocks = Device.Concat.nblocks c;
    block_size = Device.Concat.block_size c;
    read = (fun ~blk ~count -> Device.Concat.read c ~blk ~count);
    write = (fun ~blk ~data -> Device.Concat.write c ~blk data);
    read_into =
      (fun ~blk ~count ~dst ~dst_off -> Device.Concat.read_into c ~blk ~count ~dst ~dst_off);
    write_from =
      (fun ~blk ~src ~src_off ~count -> Device.Concat.write_from c ~blk ~src ~src_off ~count);
  }

let of_store s =
  {
    nblocks = Device.Blockstore.nblocks s;
    block_size = Device.Blockstore.block_size s;
    read = (fun ~blk ~count -> Device.Blockstore.read s ~blk ~count);
    write = (fun ~blk ~data -> Device.Blockstore.write s ~blk data);
    read_into =
      (fun ~blk ~count ~dst ~dst_off -> Device.Blockstore.read_into s ~blk ~count ~dst ~dst_off);
    write_from =
      (fun ~blk ~src ~src_off ~count -> Device.Blockstore.write_from s ~blk ~src ~src_off ~count);
  }
