(* Slots are ['a option] so a popped element's cell can be reset to
   [None]: with a bare ['a array] the freed tail slots kept their last
   occupant reachable — a space leak when elements own big payloads
   (the segment-cache LRU holds cache-line records). *)
type 'a t = { mutable data : 'a option array; mutable size : int; cmp : 'a -> 'a -> int }

let create ?(capacity = 0) ~cmp () = { data = Array.make (max capacity 0) None; size = 0; cmp }
let length t = t.size
let is_empty t = t.size = 0

let get t i = match Array.unsafe_get t.data i with Some x -> x | None -> assert false

let grow t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap None in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  grow t;
  t.data.(t.size) <- Some x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    (* move the last element to the root and *clear its old slot* so
       nothing beyond [size] stays reachable *)
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- None;
      sift_down t 0
    end
    else t.data.(0) <- None;
    top
  end

let peek t = if t.size = 0 then None else t.data.(0)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0
