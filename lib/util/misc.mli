val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at n l] is [(first n elements, the rest)] in one pass —
    shorter lists yield [(l, [])]. The single-pass replacement for the
    [List.filteri]-twice slicing idiom (quadratic per chunk). *)
