(** Binary min-heap with a user-supplied ordering. Popped elements are
    cleared from the backing array, so the heap never keeps dead
    entries reachable — callers can park long-lived records (e.g. the
    segment-cache LRU) here without leaking them. The simulator's own
    event queue uses the specialized {!Sim.Eventq} instead. *)

type 'a t

(** [create ?capacity ~cmp] makes an empty heap; [capacity] pre-sizes
    the backing array so a known working-set heap never re-grows
    (default 0: grow on first push). *)
val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit
