let split_at n l =
  if n < 0 then invalid_arg "Misc.split_at";
  let rec go acc n = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l
