(* Ablations over the design choices the paper discusses but could not
   yet evaluate (§5, §10):

     policy    STP exponents x cache-eviction policy over a Zipf
               archival trace (read latency, fetch counts)
     staging   immediate vs delayed (idle-period) copy-out, §5.4
     segsize   segment size vs demand-fetch latency and migration rate
     prefetch  namespace-unit prefetch on a unit re-activation, §5.3 *)

open Util
open Lfs
open Workload

(* A mid-size HighLight world on a real RZ57 model. *)
let mid_world ?(seg_blocks = 256) ?(cache_policy = Highlight.Seg_cache.Lru) engine =
  let prm =
    {
      Config.paper_prm with
      Param.seg_blocks;
      nsegs = 128 * 256 / seg_blocks (* constant 128 MB of log *);
      max_inodes = 2048;
    }
  in
  let disk = Device.Disk.create engine Device.Disk.rz57 ~name:"rz57" in
  let jb =
    Device.Jukebox.create engine ~drives:2 ~nvolumes:8 ~vol_capacity:(24 * seg_blocks)
      ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer "mo"
  in
  let fp = Footprint.create ~seg_blocks ~segs_per_volume:24 [ jb ] in
  let hl = Highlight.Hl.mkfs engine prm ~disk:(Dev.of_disk disk) ~fp ~cache_policy () in
  (hl, fp)

(* ---------- policy ablation ---------- *)

(* One pairing of STP exponents x cache-eviction policy, with the
   decision observatory watching: closes the loop on how many demotions
   the workload immediately regretted (mistake rate) and how many
   evicted lines it re-fetched (eviction regret). *)
let run_policy_trace ~stp ~cache_policy =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      (* a small disk (32 MB of log) under an archive that outgrows it,
         so the watermarks actually drive migration *)
      let prm = { Config.paper_prm with Param.nsegs = 32; max_inodes = 1024 } in
      let disk = Device.Disk.create engine Device.Disk.rz57 ~name:"rz57" in
      let jb =
        Device.Jukebox.create engine ~drives:2 ~nvolumes:8 ~vol_capacity:(24 * 256)
          ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer "mo"
      in
      let fp = Footprint.create ~seg_blocks:256 ~segs_per_volume:24 [ jb ] in
      let hl =
        Highlight.Hl.mkfs engine prm ~disk:(Dev.of_disk disk) ~fp ~cache_policy
          ~cache_segs:6 ()
      in
      let fs = Highlight.Hl.fs hl in
      let st = Highlight.Hl.state hl in
      Obs.Decision.install ~metrics:(Highlight.Hl.metrics hl) ();
      ignore (Dir.mkdir fs "/archive");
      let events =
        Trace.generate ~seed:7
          { Trace.default with Trace.events = 300; nfiles = 24; mean_file_bytes = 768 * 1024 }
      in
      let read_lat = Sim.Stats.create "read" in
      let migrate_tick = ref 0 in
      (* migration itself needs log space for its bookkeeping flushes: a
         disk that filled up mid-burst can leave even the migrator
         stuck, which the daemon form also tolerates — skip the round *)
      let migrate ~low_water ~high_water =
        try
          ignore
            (Policy.Automigrate.run_once ~policy_id:(Policy.Stp.policy_id stp) st
               ~policy:(Policy.Automigrate.stp_policy stp)
               ~low_water ~high_water)
        with Fs.No_space | Highlight.State.Tertiary_full -> ()
      in
      Trace.replay ~engine
        ~write:(fun path ~off data ->
          (try Highlight.Hl.write_file hl path ~off data
           with Fs.No_space ->
             (* emergency: migrate cold data out, reclaim, retry once *)
             migrate ~low_water:(Fs.param fs).Param.nsegs
               ~high_water:((Fs.param fs).Param.nsegs * 3 / 4);
             (try Highlight.Hl.write_file hl path ~off data with Fs.No_space -> ()));
          incr migrate_tick;
          (* the continuously-running migrator wakes between bursts *)
          if !migrate_tick mod 5 = 0 then
            migrate
              ~low_water:((Fs.param fs).Param.nsegs / 2)
              ~high_water:((Fs.param fs).Param.nsegs * 3 / 4))
        ~read:(fun path ~off ~len ->
          match Dir.namei_opt fs path with
          | None -> ()
          | Some ino ->
              let t0 = Sim.Engine.now engine in
              ignore (File.read fs ino ~off ~len);
              Sim.Stats.add read_lat (Sim.Engine.now engine -. t0))
        ~delete:(fun path -> try Dir.unlink fs path with Not_found -> ())
        events;
      let s = Highlight.Hl.stats hl in
      let sli = Obs.Decision.sli () in
      Obs.Decision.uninstall ();
      (Sim.Stats.mean read_lat, s.Highlight.Hl.demand_fetches, s.Highlight.Hl.bytes_migrated, sli))

let run_policy () =
  let table =
    Tablefmt.create
      ~title:"Ablation: migration ranking x cache eviction (Zipf archival trace)"
      ~header:
        [
          "STP exponents (t,s)"; "eviction"; "mean read"; "demand fetches"; "MB migrated";
          "mistake rate"; "evict regret";
        ]
  in
  let variants =
    List.concat_map
      (fun (te, se) ->
        List.map
          (fun (pname, pol) ->
            let mean, fetches, migrated, sli =
              run_policy_trace
                ~stp:{ Policy.Stp.time_exp = te; size_exp = se; min_idle = 30.0 }
                ~cache_policy:pol
            in
            let mistakes, demotions, regrets, evictions =
              match sli with
              | Some s ->
                  ( s.Obs.Decision.seg_mistakes, s.Obs.Decision.seg_demotions,
                    s.Obs.Decision.regrets, s.Obs.Decision.evictions )
              | None -> (0, 0, 0, 0)
            in
            let rate a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
            Tablefmt.add_row table
              [
                Printf.sprintf "(%.0f,%.0f)" te se;
                pname;
                Printf.sprintf "%.3f s" mean;
                string_of_int fetches;
                Printf.sprintf "%.1f" (float_of_int migrated /. 1048576.0);
                Printf.sprintf "%.3f (%d/%d)" (rate mistakes demotions) mistakes demotions;
                Printf.sprintf "%.3f (%d/%d)" (rate regrets evictions) regrets evictions;
              ];
            (te, se, pname, mean, fetches, migrated, mistakes, demotions, regrets, evictions))
          [ ("lru", Highlight.Seg_cache.Lru); ("least-worthy", Highlight.Seg_cache.Least_worthy) ])
      [ (1.0, 1.0); (1.0, 0.0); (0.0, 1.0); (2.0, 1.0) ]
  in
  Tablefmt.print table;
  let oc = open_out "BENCH_policy.json" in
  Printf.fprintf oc "{\n  \"schema\": \"highlight-bench-policy/v1\",\n  \"variants\": [\n";
  let n = List.length variants in
  List.iteri
    (fun i (te, se, pname, mean, fetches, migrated, mistakes, demotions, regrets, evictions) ->
      let rate a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
      Printf.fprintf oc
        "    { \"stp\": [%g, %g], \"cache_policy\": %S, \"mean_read_s\": %.6f, \
         \"demand_fetches\": %d, \"bytes_migrated\": %d, \"seg_demotions\": %d, \
         \"seg_mistakes\": %d, \"mistake_rate\": %.4f, \"evictions\": %d, \"regrets\": %d, \
         \"eviction_regret_rate\": %.4f }%s\n"
        te se pname mean fetches migrated demotions mistakes (rate mistakes demotions)
        evictions regrets (rate regrets evictions)
        (if i = n - 1 then "" else ","))
    variants;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  print_endline "  wrote BENCH_policy.json"

(* ---------- staging (immediate vs delayed copy-out) ---------- *)

let staging_variant ~delayed =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let hl, _fp = mid_world engine in
      let fs = Highlight.Hl.fs hl in
      let st = Highlight.Hl.state hl in
      (* a hot disk-resident file read during a fixed busy window while
         cold data migrates; delayed copy-out lands in the idle period
         after the window (the paper's 5.4 policy) *)
      let hot = Dir.create_file fs "/hot" in
      File.write fs hot ~off:0 (Bytes.create (1024 * 1024));
      let cold_paths = List.init 6 (fun i -> Printf.sprintf "/cold%d" i) in
      List.iter
        (fun p ->
          let f = Dir.create_file fs p in
          File.write fs f ~off:0 (Bytes.create (2 * 1024 * 1024)))
        cold_paths;
      Fs.checkpoint fs;
      let read_lat = Sim.Stats.create "hot reads" in
      let nreads = 600 in (* a 150 s busy window covers the whole immediate migration *)
      let finished = ref false in
      let reader_done = Sim.Condvar.create () in
      Sim.Engine.spawn engine (fun () ->
          let rng = Rng.create 3 in
          for _ = 1 to nreads do
            let t0 = Sim.Engine.now engine in
            ignore (File.read fs hot ~off:(Rng.int rng 200 * 4096) ~len:4096);
            Sim.Stats.add read_lat (Sim.Engine.now engine -. t0);
            Sim.Engine.delay 0.25
          done;
          finished := true;
          Sim.Condvar.broadcast reader_done);
      let await_reader () = while not !finished do Sim.Condvar.wait reader_done done in
      let t0 = Sim.Engine.now engine in
      let inums = List.map (fun p -> (Dir.namei fs p).Inode.inum) cold_paths in
      (if delayed then begin
         ignore (Highlight.Migrator.stage_files_only st inums);
         (* wait for the idle period, then copy out *)
         await_reader ();
         ignore (Highlight.Migrator.flush_staged st ())
       end
       else begin
         ignore (Highlight.Migrator.migrate_files st ~checkpoint:false inums);
         await_reader ()
       end);
      let elapsed = Sim.Engine.now engine -. t0 in
      Fs.checkpoint fs;
      (Sim.Stats.mean read_lat, elapsed))

let run_staging () =
  let imm_lat, imm_elapsed = staging_variant ~delayed:false in
  let del_lat, del_elapsed = staging_variant ~delayed:true in
  let table =
    Tablefmt.create ~title:"Ablation: immediate vs delayed segment copy-out (paper 5.4)"
      ~header:[ "variant"; "busy-window hot-read mean"; "data safe on tertiary after" ]
  in
  Tablefmt.add_row table
    [ "immediate"; Printf.sprintf "%.1f ms" (imm_lat *. 1000.0); Tablefmt.seconds imm_elapsed ];
  Tablefmt.add_row table
    [ "delayed"; Printf.sprintf "%.1f ms" (del_lat *. 1000.0); Tablefmt.seconds del_elapsed ];
  Tablefmt.print table;
  print_endline
    "  shape check: delaying copy-out shields foreground reads from disk-arm contention,";
  print_endline "  at the cost of reserved disk space and a longer time-to-tertiary."

(* ---------- segment size ---------- *)

let segsize_variant seg_blocks =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let hl, _ = mid_world ~seg_blocks engine in
      let fs = Highlight.Hl.fs hl in
      let st = Highlight.Hl.state hl in
      let f = Dir.create_file fs "/blob" in
      File.write fs f ~off:0 (Bytes.create (8 * 1024 * 1024));
      let t0 = Sim.Engine.now engine in
      ignore (Highlight.Migrator.migrate_paths st [ "/blob" ]);
      let migrate_time = Sim.Engine.now engine -. t0 in
      Highlight.Hl.eject_tertiary_copies hl ~paths:[ "/blob" ];
      Bcache.invalidate_clean (Fs.bcache fs);
      (* one cold 4 KB read: demand-fetch latency for this line size *)
      let t1 = Sim.Engine.now engine in
      ignore (File.read fs f ~off:0 ~len:4096);
      let fetch_latency = Sim.Engine.now engine -. t1 in
      (fetch_latency, 8.0 *. 1048576.0 /. migrate_time))

let run_segsize () =
  let table =
    Tablefmt.create ~title:"Ablation: segment (cache line) size"
      ~header:[ "segment"; "cold 4KB read latency"; "migration throughput" ]
  in
  List.iter
    (fun seg_blocks ->
      let latency, rate = segsize_variant seg_blocks in
      Tablefmt.add_row table
        [
          Printf.sprintf "%d KB" (seg_blocks * 4);
          Tablefmt.seconds latency;
          Tablefmt.kb_s rate;
        ])
    [ 64; 128; 256; 512 ];
  Tablefmt.print table;
  print_endline
    "  shape check: big segments amortise migration but make a cold random read pay for a";
  print_endline "  whole cache line; 1MB (the paper's choice) sits near the knee."

(* ---------- namespace-unit prefetch ---------- *)

let prefetch_variant ~prefetch =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let hl, _ = mid_world engine in
      let fs = Highlight.Hl.fs hl in
      let st = Highlight.Hl.state hl in
      ignore (Dir.mkdir fs "/unit");
      let paths =
        Tree_gen.build fs ~seed:5 ~root:"/unit"
          { Tree_gen.files_per_dir = 8; fanout = 2; depth = 2;
            file_bytes_min = 100 * 1024; file_bytes_max = 200 * 1024 }
      in
      let tsegs = Highlight.Migrator.migrate_paths st ("/unit" :: paths) in
      (* unit hint, as in paper 5.3: a miss on any of the unit's segments
         prefetches the next segments of the same unit *)
      if prefetch then
        Highlight.Hl.set_prefetch_hints hl (fun tindex ->
            let rec after = function
              | t :: rest when t = tindex ->
                  List.filteri (fun i _ -> i < 3) rest
              | _ :: rest -> after rest
              | [] -> []
            in
            after (List.sort compare tsegs));
      Highlight.Hl.eject_tertiary_copies hl ~paths:("/unit" :: paths);
      Bcache.invalidate_clean (Fs.bcache fs);
      (* re-activation: read and analyse the whole unit; 0.5 s of
         processing per file gives prefetch something to overlap *)
      let t0 = Sim.Engine.now engine in
      List.iter
        (fun p ->
          let ino = Dir.namei fs p in
          ignore (File.read fs ino ~off:0 ~len:ino.Inode.size);
          Sim.Engine.delay 0.5)
        paths;
      Sim.Engine.now engine -. t0)

let run_prefetch () =
  let off = prefetch_variant ~prefetch:false in
  let on = prefetch_variant ~prefetch:true in
  let table =
    Tablefmt.create ~title:"Ablation: clustered-unit prefetch on re-activation (paper 5.3)"
      ~header:[ "prefetch"; "unit re-read time" ]
  in
  Tablefmt.add_row table [ "off"; Tablefmt.seconds off ];
  Tablefmt.add_row table [ "unit hints, depth 3"; Tablefmt.seconds on ];
  Tablefmt.print table

(* ---------- tertiary rearrangement (paper 5.4) ---------- *)

let rearrange_variant ~rearrange =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let prm = { Config.paper_prm with Param.nsegs = 64; max_inodes = 1024 } in
      let disk = Device.Disk.create engine Device.Disk.rz57 ~name:"rz57" in
      (* one MO drive: cross-volume analysis pays a swap per switch *)
      let jb =
        Device.Jukebox.create engine ~drives:1 ~nvolumes:6 ~vol_capacity:(10 * 256)
          ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer "mo"
      in
      let fp = Footprint.create ~seg_blocks:256 ~segs_per_volume:10 [ jb ] in
      let hl = Highlight.Hl.mkfs engine prm ~disk:(Dev.of_disk disk) ~fp ~cache_segs:12 () in
      let fs = Highlight.Hl.fs hl in
      let st = Highlight.Hl.state hl in
      (* two satellite data sets, loaded and archived independently *)
      List.iter
        (fun (path, seed) ->
          let f = Dir.create_file fs path in
          File.write fs f ~off:0 (Bytes.make (4 * 1024 * 1024) seed);
          ignore (Highlight.Migrator.migrate_paths st [ path ]))
        [ ("/landsat", 'L'); ("/avhrr", 'A') ];
      let rearranger = Policy.Rearrange.create ~window:10_000.0 ~min_group:4 st in
      if rearrange then Policy.Rearrange.install rearranger;
      let analyse () =
        (* joint analysis: alternating chunks of both sets *)
        for chunk = 0 to 3 do
          List.iter
            (fun path ->
              let ino = Dir.namei fs path in
              ignore (File.read fs ino ~off:(chunk * 1024 * 1024) ~len:(1024 * 1024)))
            [ "/landsat"; "/avhrr" ]
        done
      in
      let cold () =
        Highlight.Hl.eject_tertiary_copies hl ~paths:[ "/landsat"; "/avhrr" ];
        Bcache.invalidate_clean (Fs.bcache fs)
      in
      cold ();
      let t0 = Sim.Engine.now engine in
      analyse ();
      let first_run = Sim.Engine.now engine -. t0 in
      if rearrange then ignore (Policy.Rearrange.run_once rearranger);
      cold ();
      let t1 = Sim.Engine.now engine in
      analyse ();
      let second_run = Sim.Engine.now engine -. t1 in
      (first_run, second_run, Device.Jukebox.swaps jb))

let run_rearrange () =
  let base_first, base_second, base_swaps = rearrange_variant ~rearrange:false in
  let r_first, r_second, r_swaps = rearrange_variant ~rearrange:true in
  let table =
    Tablefmt.create
      ~title:"Ablation: tertiary rearrangement on co-access (paper 5.4)"
      ~header:[ "variant"; "1st joint analysis"; "2nd joint analysis"; "media swaps total" ]
  in
  Tablefmt.add_row table
    [ "static layout"; Tablefmt.seconds base_first; Tablefmt.seconds base_second;
      string_of_int base_swaps ];
  Tablefmt.add_row table
    [ "rearranged after 1st"; Tablefmt.seconds r_first; Tablefmt.seconds r_second;
      string_of_int r_swaps ];
  Tablefmt.print table;
  print_endline
    "  shape check: re-clustering the co-accessed segments cuts the second run's volume";
  print_endline "  switches, at the cost of extra tertiary space (old copies await the cleaner)."

let run () =
  run_policy ();
  run_staging ();
  run_segsize ();
  run_prefetch ();
  run_rearrange ()
