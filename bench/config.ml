(* Shared experiment configuration: the paper's testbed (§7).

   HP 9000/370, 32 MB RAM (3.2 MB buffer cache), a DEC RZ57 with an
   848 MB partition for the file system, and an HP 6300 MO changer with
   two drives whose platters the tests constrained to 40 MB to force
   volume changes. Raw rates are calibrated to Table 5; everything else
   is produced by running the file systems over these models. *)

open Lfs

let frame_bytes = 4096
let frames = 12500 (* 51.2 MB object *)

(* 848 MB partition => 832 one-megabyte log segments + superblock area *)
let paper_prm =
  {
    Param.block_size = 4096;
    seg_blocks = 256;
    nsegs = 832;
    max_inodes = 4096;
    bcache_blocks = 800 (* 3.2 MB *);
    clean_reserve = 8;
    cpu = Param.cpu_1993;
  }

(* CPU model calibrated against Table 2's FFS column (see EXPERIMENTS.md) *)
let cpu = { Param.syscall = 0.0004; per_block = 0.0007; copy_rate = 3.2 *. 1024.0 *. 1024.0 }
let paper_prm = { paper_prm with Param.cpu = cpu }

type world = {
  bus : Device.Scsi_bus.t;
  rz57 : Device.Disk.t;
  jukebox : Device.Jukebox.t;
  fp : Footprint.t;
}

let make_world engine =
  let bus = Device.Scsi_bus.create engine "scsi0" in
  let rz57 = Device.Disk.create engine ~bus Device.Disk.rz57 ~name:"rz57" in
  let jukebox =
    Device.Jukebox.create engine ~bus ~drives:2 ~nvolumes:32
      ~vol_capacity:(10240 (* 40 MB, the tests' constrained platter size *))
      ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer "hp6300"
  in
  let fp = Footprint.create ~seg_blocks:256 ~segs_per_volume:40 [ jukebox ] in
  { bus; rz57; jukebox; fp }

let ffs_params =
  {
    (Ffs.default_params ~ngroups:26 ~blocks_per_group:8192) with
    Ffs.inodes_per_group = 160;
    cpu;
    bcache_blocks = 800;
  }

(* Simulated seconds consumed by every [in_sim] run since the last
   [take_sim_elapsed] — the per-target "simulated elapsed" figure the
   harness's --json mode reports. *)
let sim_elapsed = ref 0.0
let take_sim_elapsed () =
  let v = !sim_elapsed in
  sim_elapsed := 0.0;
  v

(* --trace support: every [in_sim] run records into its own tracer (each
   engine's clock starts at 0) and the runs are concatenated onto one
   timeline, each offset by the simulated time accumulated before it. *)
let trace_requested = ref false
let trace_acc : Sim.Trace.t option ref = ref None
let trace_offset = ref 0.0

(* Harness-wide metrics (latency percentiles for --json): targets fold
   their instance's registry in with [harvest_metrics] before tearing
   the instance down. *)
let bench_metrics = Sim.Metrics.create ()

let harvest_metrics m =
  match Sim.Metrics.find_histogram m "service.demand_fetch_latency_s" with
  | Some h when Sim.Metrics.observations h > 0 ->
      Sim.Metrics.merge_histogram
        (Sim.Metrics.histogram bench_metrics "service.demand_fetch_latency_s")
        h
  | _ -> ()

(* Wait-profile attribution: a target that installs a {!Sim.Ledger}
   registry around a measured phase calls [take_attribution] once its
   simulation has drained (in-flight ledgers close on their own sim
   time, after the bench body exits). The per-class category blame is
   returned for the target's own report and recorded for --json. *)
let attributions : (string * (string * (string * float) list) list) list ref = ref []

let take_attribution label =
  let classes =
    List.map
      (fun (cs : Sim.Ledger.class_summary) ->
        ( cs.Sim.Ledger.cls,
          List.map
            (fun (c : Sim.Ledger.cat_stat) ->
              (Sim.Ledger.category_name c.Sim.Ledger.cat, c.Sim.Ledger.total_s))
            cs.Sim.Ledger.by_category ))
      (Sim.Ledger.summary ())
  in
  Sim.Ledger.uninstall ();
  attributions := !attributions @ [ (label, classes) ];
  classes

(* Blame-ranked lists put the dominant category first. *)
let dominant_wait classes cls =
  match List.assoc_opt cls classes with Some ((cat, _) :: _) -> cat | _ -> "-"

(* Run a benchmark body inside a simulation process and return its
   result once the simulation drains. *)
let in_sim engine f =
  let tracer = if !trace_requested then Some (Sim.Trace.start engine) else None in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"bench-main" (fun () -> result := Some (f ()));
  Sim.Engine.run engine;
  let elapsed = Sim.Engine.now engine in
  sim_elapsed := !sim_elapsed +. elapsed;
  (match tracer with
  | None -> ()
  | Some tr ->
      Sim.Trace.stop ();
      (match !trace_acc with
      | None -> trace_acc := Some tr
      | Some acc -> Sim.Trace.absorb acc ~offset:!trace_offset tr);
      trace_offset := !trace_offset +. elapsed);
  match !result with
  | Some r -> r
  | None -> failwith "bench: simulation did not complete"

(* paper-reported numbers for side-by-side tables *)
let kb v = v *. 1024.0

let paper_table2 =
  (* (phase, ffs, base lfs, hl on-disk, hl in-cache) in KB/s *)
  [
    ("sequential read", 1002.0, 819.0, 813.0, 813.0);
    ("sequential write", 1024.0, 639.0, 617.0, 596.0);
    ("random read", 152.0, 154.0, 152.0, 148.0);
    ("random write", 315.0, 749.0, 749.0, 807.0);
    ("read 80/20", 152.0, 154.0, 152.0, 148.0);
    ("write 80/20", 710.0, 873.0, 749.0, 749.0);
  ]

let paper_table3 =
  (* (size label, bytes, ffs first/total, hl cached first/total, hl uncached first/total) *)
  [
    ("10KB", 10 * 1024, (0.06, 0.09), (0.11, 0.12), (3.57, 3.59));
    ("100KB", 100 * 1024, (0.06, 0.27), (0.11, 0.27), (3.59, 3.73));
    ("1MB", 1024 * 1024, (0.06, 1.29), (0.10, 1.55), (3.51, 8.22));
    ("10MB", 10 * 1024 * 1024, (0.07, 11.89), (0.09, 13.68), (3.57, 44.23));
  ]

let paper_table4 = [ ("Footprint write", 62.0); ("I/O server read", 37.0); ("Migrator queuing", 1.0) ]

let paper_table5 =
  [
    ("Raw MO read", kb 451.0);
    ("Raw MO write", kb 204.0);
    ("Raw RZ57 read", kb 1417.0);
    ("Raw RZ57 write", kb 993.0);
    ("Raw RZ58 read", kb 1491.0);
    ("Raw RZ58 write", kb 1261.0);
  ]

let paper_table6 =
  (* staging config -> (contention, no-contention, overall) KB/s *)
  [
    ("RZ57", 111.0, 192.0, 135.0);
    ("RZ57+RZ58", 127.0, 202.0, 149.0);
    ("RZ57+HP7958A", 46.8, 145.0, 99.0);
  ]
