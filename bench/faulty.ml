(* Fault bench: the pipeline read-back scenario rerun under injected
   device faults (see lib/sim/fault.mli for the plan DSL).

   Three rows: a clean baseline; 5% transient media errors on every
   jukebox drive (every fetch and write-out has a real chance of
   failing mid-transfer, the service layer retries with backoff); and a
   permanently dead drive (killed on its first operation, so the whole
   run falls over to the surviving drive). The run is only considered
   healthy if every byte read back is identical to what was written,
   nothing hangs, and the failure rows show the expected retry/failover
   counters while the baseline shows none. *)

open Lfs

let file_bytes = 8 * 1024 * 1024
let chunk = 1024 * 1024

let pattern tag = Bytes.init file_bytes (fun i -> Char.chr ((tag + (i * 31)) land 0xff))

type run = {
  elapsed : float;
  ok : bool;
  fetches : int;
  retries : int;
  failures : int;
  injected : int;
  alerts : int;  (* SLO alerts fired by the health plane *)
  bundle : string option;  (* black-box dump of the first alert *)
}

(* The ISSUE's example objective: every scenario runs under the same
   latency SLO. The baseline and the retried transient errors stay
   inside 40 s per fetch; only the dead drive — every request funneled
   through one drive with a platter swap per file — breaches it. *)
let slo_text = "fetch_p99: demand_fetch.p99 < 40s\n"

let run_plan plan_text =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let bus = Device.Scsi_bus.create engine "scsi0" in
      let disk = Device.Disk.create engine ~bus Device.Disk.rz57 ~name:"rz57" in
      let jukebox =
        Device.Jukebox.create engine ~drives:2 ~nvolumes:8 ~vol_capacity:10240
          ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer
          "hp6300"
      in
      let fp = Footprint.create ~seg_blocks:256 ~segs_per_volume:40 [ jukebox ] in
      let dev = Dev.of_disk disk in
      let prm = { Config.paper_prm with Param.nsegs = (dev.Dev.nblocks / 256) - 1 } in
      let hl = Highlight.Hl.mkfs engine prm ~disk:dev ~fp () in
      (* armed right after mkfs: migration write-outs and the read-back
         fetches both run under the plan *)
      (match plan_text with
      | None -> ()
      | Some text -> (
          match Sim.Fault.parse text with
          | Ok plan -> Sim.Fault.install engine ~metrics:(Highlight.Hl.metrics hl) plan
          | Error msg -> failwith ("faulty bench: bad plan: " ^ msg)));
      let flight = Sim.Flight.start ~dir:"blackbox-faulty" engine in
      let health =
        match Obs.Health.parse slo_text with
        | Error msg -> failwith ("faulty bench: bad SLO: " ^ msg)
        | Ok objectives ->
            Obs.Health.install ~quiet:true ~flight ~metrics:(Highlight.Hl.metrics hl)
              engine objectives
      in
      Highlight.Hl.set_prefetch_sequential hl ~depth:2;
      let st = Highlight.Hl.state hl in
      let fsys = Highlight.Hl.fs hl in
      let data_a = pattern 1 and data_b = pattern 2 in
      Highlight.Hl.write_file hl "/a" data_a;
      Highlight.Hl.write_file hl "/b" data_b;
      Fs.checkpoint fsys;
      st.Highlight.State.restrict_volume <- Some 0;
      ignore (Highlight.Migrator.migrate_paths st [ "/a" ]);
      st.Highlight.State.restrict_volume <- Some 1;
      ignore (Highlight.Migrator.migrate_paths st [ "/b" ]);
      st.Highlight.State.restrict_volume <- None;
      Highlight.Hl.eject_tertiary_copies hl ~paths:[ "/a"; "/b" ];
      let t0 = Sim.Engine.now engine in
      let done_cv = Sim.Condvar.create () in
      let remaining = ref 2 in
      let ok = ref true in
      let reader name path data =
        Sim.Engine.spawn engine ~name (fun () ->
            (try
               let buf = Buffer.create file_bytes in
               for i = 0 to (file_bytes / chunk) - 1 do
                 Buffer.add_bytes buf
                   (Highlight.Hl.read_file hl path ~off:(i * chunk) ~len:chunk ())
               done;
               if not (String.equal (Buffer.contents buf) (Bytes.to_string data)) then
                 ok := false
             with Highlight.State.Io_error _ -> ok := false);
            decr remaining;
            Sim.Condvar.broadcast done_cv)
      in
      reader "reader-a" "/a" data_a;
      reader "reader-b" "/b" data_b;
      while !remaining > 0 do
        Sim.Condvar.wait done_cv
      done;
      let elapsed = Sim.Engine.now engine -. t0 in
      let s = Highlight.Hl.stats hl in
      Config.harvest_metrics (Highlight.Hl.metrics hl);
      Highlight.Hl.shutdown_service hl;
      Obs.Health.stop health;
      let slo_alerts =
        List.filter (fun a -> a.Obs.Health.a_kind = "slo") (Obs.Health.alerts health)
      in
      Sim.Flight.stop flight;
      Sim.Fault.clear ();
      {
        elapsed;
        ok = !ok;
        fetches = s.Highlight.Hl.demand_fetches;
        retries = s.Highlight.Hl.io_retries;
        failures = s.Highlight.Hl.io_failures;
        injected = s.Highlight.Hl.faults_injected;
        alerts = List.length slo_alerts;
        bundle =
          (match slo_alerts with a :: _ -> a.Obs.Health.a_bundle | [] -> None);
      })

let transient_plan = "seed=11\nhp6300:drive* read,write prob=0.05 media_error transient\n"
let dead_drive_plan = "hp6300:drive1 * op=1 media_error permanent\n"

let run () =
  let baseline = run_plan None in
  let flaky = run_plan (Some transient_plan) in
  let degraded = run_plan (Some dead_drive_plan) in
  let t =
    Util.Tablefmt.create
      ~title:"Fault injection: 2 x 8 MB read-back under media errors and a dead drive"
      ~header:
        [ "scenario"; "elapsed (s)"; "fetches"; "faults"; "retries"; "failures"; "alerts";
          "bytes" ]
  in
  let row name r =
    Util.Tablefmt.add_row t
      [
        name;
        Printf.sprintf "%.1f" r.elapsed;
        string_of_int r.fetches;
        string_of_int r.injected;
        string_of_int r.retries;
        string_of_int r.failures;
        string_of_int r.alerts;
        (if r.ok then "identical" else "CORRUPT");
      ]
  in
  row "baseline" baseline;
  row "5% media errors" flaky;
  row "drive1 dead" degraded;
  Util.Tablefmt.print t;
  let bundle_ok =
    match degraded.bundle with
    | None -> false
    | Some dir ->
        (* the dump must be a complete black box: a non-empty Chrome
           trace plus the metrics snapshot and manifest *)
        List.for_all
          (fun f ->
            let p = Filename.concat dir f in
            Sys.file_exists p && (Unix.stat p).Unix.st_size > 2)
          [ "trace.json"; "metrics.json"; "manifest.json" ]
  in
  let healthy =
    baseline.ok && baseline.injected = 0 && baseline.alerts = 0
    && flaky.ok && flaky.injected > 0 && flaky.retries > 0 && flaky.alerts = 0
    && degraded.ok && degraded.injected > 0 && degraded.failures = 0
    && degraded.alerts = 1 && bundle_ok
  in
  Printf.printf "  transient faults retried: %d over %d injections; dead drive absorbed by \
                 failover (slowdown %.2fx)  [%s]\n"
    flaky.retries flaky.injected
    (if baseline.elapsed > 0.0 then degraded.elapsed /. baseline.elapsed else 0.0)
    (if healthy then "ok" else "FAIL");
  Printf.printf "  health plane (%s): dead drive fired %d deduplicated alert(s)%s\n"
    (String.trim slo_text) degraded.alerts
    (match degraded.bundle with
    | Some d -> Printf.sprintf "; black box -> %s" d
    | None -> "");
  print_endline
    "  shape checks: every scenario byte-identical; faults appear only when injected;\n\
    \  the dead-drive run completes on the sibling drive with zero request failures;\n\
    \  only the dead drive breaches the latency SLO, exactly once, with a full black box."
