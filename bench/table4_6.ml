(* Tables 4 and 6: the migration-path experiments. The 51.2 MB object is
   migrated entirely to the MO jukebox while the migrator and I/O server
   are instrumented.

   Table 4 breaks the elapsed time into Footprint writes, I/O-server raw
   disk reads, and queueing.

   Table 6 reports migrator throughput in two phases: while the migrator
   is still assembling staging segments (disk-arm contention with the
   I/O server) and after it finishes (no contention), for three staging
   configurations: everything on the RZ57, staging on a second RZ58, and
   staging on a slow HP 7958A. *)

open Util
open Lfs

type migration_run = {
  contention_rate : float;  (* bytes/s to MO while migrator active *)
  no_contention_rate : float;
  overall_rate : float;
  fp_write_pct : float;
  io_read_pct : float;
  queue_pct : float;
  (* same phases as a share of the busy-span wall time: with the
     pipelined I/O layer the shares sum past 100% because the phases
     overlap *)
  fp_write_olap : float;
  io_read_olap : float;
  queue_olap : float;
  overlap : float;  (* busy time / busy-span wall time; 1.0 = serial *)
}

let total_bytes = Config.frames * Config.frame_bytes

let run_migration ?(io_mode = Highlight.State.Pipelined) ~staging () =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let w = Config.make_world engine in
      let disks =
        match staging with
        | `Rz57_only -> [ w.Config.rz57 ]
        | `Rz58 ->
            [ w.Config.rz57; Device.Disk.create engine ~bus:w.Config.bus Device.Disk.rz58 ~name:"rz58" ]
        | `Hp7958a ->
            (* HP-IB disk: its own bus *)
            [ w.Config.rz57; Device.Disk.create engine Device.Disk.hp7958a ~name:"hp7958a" ]
      in
      let second_disk_floor =
        (* log segments of the first disk only; staging floor at the
           second spindle *)
        match disks with
        | [ _ ] -> None
        | d0 :: _ -> Some ((Device.Disk.nblocks d0 / 256) - 1)
        | [] -> None
      in
      let dev =
        match disks with [ d ] -> Dev.of_disk d | ds -> Dev.of_concat (Device.Concat.concat ds)
      in
      let nsegs = (dev.Dev.nblocks / 256) - 1 in
      let prm = { Config.paper_prm with Param.nsegs = min nsegs 1200 } in
      let hl = Highlight.Hl.mkfs engine prm ~disk:dev ~fp:w.Config.fp ~io_mode () in
      let fs = Highlight.Hl.fs hl in
      (match second_disk_floor with
      | Some floor -> Fs.set_cache_floor fs floor
      | None -> ());
      (* build the object *)
      let f = Dir.create_file fs "/object" in
      let chunk = Bytes.create (64 * 4096) in
      for i = 0 to (total_bytes / Bytes.length chunk) - 1 do
        File.write fs f ~off:(i * Bytes.length chunk) chunk
      done;
      Fs.checkpoint fs;
      (* preload volume 0 so the first write pays no swap *)
      ignore (Device.Jukebox.read w.Config.jukebox ~vol:0 ~blk:0 ~count:1);
      Highlight.Hl.reset_stats hl;
      let st = Highlight.Hl.state hl in
      let t0 = Sim.Engine.now engine in
      (* stage everything without waiting: the I/O server copies out
         concurrently => the contention phase *)
      ignore (Highlight.Migrator.migrate_paths st ~wait:false ~checkpoint:false [ "/object" ]);
      let t1 = Sim.Engine.now engine in
      let mo_at_staging_end = Footprint.bytes_written w.Config.fp in
      (* drain the writeout queue: the no-contention phase *)
      let rec drain () =
        if Footprint.bytes_written w.Config.fp < (Highlight.Hl.stats hl).Highlight.Hl.segments_staged * 256 * 4096
        then begin
          Sim.Engine.delay 1.0;
          drain ()
        end
      in
      drain ();
      let t2 = Sim.Engine.now engine in
      Fs.checkpoint fs;
      let stats = Highlight.Hl.stats hl in
      let total_mo = Footprint.bytes_written w.Config.fp in
      let elapsed = t2 -. t0 in
      let fp_time = stats.Highlight.Hl.footprint_time in
      let io_read = stats.Highlight.Hl.io_disk_time in
      let queue = stats.Highlight.Hl.queue_time in

      let denom = fp_time +. io_read +. queue in
      let overlap = stats.Highlight.Hl.io_overlap in
      let union =
        let busy = stats.Highlight.Hl.io_tertiary_time +. io_read in
        if overlap > 0.0 then busy /. overlap else 0.0
      in
      let olap_pct v = if union > 0.0 then 100.0 *. v /. union else 0.0 in
      {
        contention_rate =
          (if t1 > t0 then float_of_int mo_at_staging_end /. (t1 -. t0) else 0.0);
        no_contention_rate =
          (if t2 > t1 then float_of_int (total_mo - mo_at_staging_end) /. (t2 -. t1) else 0.0);
        overall_rate = float_of_int total_mo /. elapsed;
        fp_write_pct = 100.0 *. fp_time /. denom;
        io_read_pct = 100.0 *. io_read /. denom;
        queue_pct = 100.0 *. queue /. denom;
        fp_write_olap = olap_pct stats.Highlight.Hl.io_tertiary_time;
        io_read_olap = olap_pct io_read;
        queue_olap = olap_pct queue;
        overlap;
      })

let run () =
  let rz57 = run_migration ~staging:`Rz57_only () in
  let rz58 = run_migration ~staging:`Rz58 () in
  let hp = run_migration ~staging:`Hp7958a () in
  let serial = run_migration ~io_mode:Highlight.State.Serial ~staging:`Rz57_only () in
  (* Table 4 from the baseline configuration *)
  let t4 =
    Tablefmt.create ~title:"Table 4: migration elapsed-time breakdown (RZ57 staging)"
      ~header:[ "Phase"; "paper"; "measured"; "overlapped" ]
  in
  List.iter2
    (fun (label, paper) (measured, overlapped) ->
      Tablefmt.add_row t4
        [
          label;
          Printf.sprintf "%.0f%%" paper;
          Printf.sprintf "%.0f%%" measured;
          Printf.sprintf "%.0f%%" overlapped;
        ])
    Config.paper_table4
    [
      (rz57.fp_write_pct, rz57.fp_write_olap);
      (rz57.io_read_pct, rz57.io_read_olap);
      (rz57.queue_pct, rz57.queue_olap);
    ];
  Tablefmt.print t4;
  Printf.printf
    "  overlapped = phase busy time as %% of the busy-span wall time; overlap factor %.2fx\n\
    \  (sum > 100%% means the pipelined I/O layer ran the phases concurrently)\n"
    rz57.overlap;
  Printf.printf
    "  pipelined vs serial I/O (RZ57 staging): %.1f vs %.1f KB/s overall (%.2fx),\n\
    \  overlap %.2fx vs %.2fx — migration is MO-write-bound, so the headroom the\n\
    \  pipeline can reclaim here is the disk-read phase; the fetch path (see the\n\
    \  'pipeline' target) gains far more.\n"
    (rz57.overall_rate /. 1024.0)
    (serial.overall_rate /. 1024.0)
    (rz57.overall_rate /. serial.overall_rate)
    rz57.overlap serial.overlap;
  let t6 =
    Tablefmt.create
      ~title:"Table 6: migrator throughput (KB/s; paper -> measured)"
      ~header:[ "Phase"; "RZ57"; "RZ57+RZ58"; "RZ57+HP7958A" ]
  in
  let cell paper v = Printf.sprintf "%5.1f -> %5.1f" paper (v /. 1024.0) in
  let row name select =
    let p57, p58, php =
      match Config.paper_table6 with
      | [ (_, a1, a2, a3); (_, b1, b2, b3); (_, c1, c2, c3) ] ->
          let pick (x, y, z) = match name with
            | "Magnetic disk arm contention" -> x
            | "No arm contention" -> y
            | _ -> z
          in
          (pick (a1, a2, a3), pick (b1, b2, b3), pick (c1, c2, c3))
      | _ -> (0.0, 0.0, 0.0)
    in
    Tablefmt.add_row t6
      [ name; cell p57 (select rz57); cell p58 (select rz58); cell php (select hp) ]
  in
  row "Magnetic disk arm contention" (fun r -> r.contention_rate);
  row "No arm contention" (fun r -> r.no_contention_rate);
  row "Overall" (fun r -> r.overall_rate);
  Tablefmt.print t6;
  print_endline
    "  shape checks: Footprint (MO write) dominates the breakdown; contention phase is";
  print_endline
    "  slower than the drain phase; a second fast spindle helps, a slow one hurts badly."

