(* Table 3: access delays — time to first byte and total time to read
   files of 10 KB..10 MB through an 8 KB-buffered reader (the paper used
   stdio), for FFS, HighLight with the data in the segment cache, and
   HighLight uncached (demand-fetched from the MO jukebox). The tertiary
   volume is in the drive when the test begins, as in the paper. *)

open Util
open Lfs

let sizes = List.map (fun (label, bytes, _, _, _) -> (label, bytes)) Config.paper_table3

let buffered_read engine read_chunk size =
  (* stdio-style: 8 KB buffer; returns (first-byte latency, total) *)
  let t0 = Sim.Engine.now engine in
  let first = ref None in
  let pos = ref 0 in
  while !pos < size do
    let n = min 8192 (size - !pos) in
    read_chunk ~off:!pos ~len:n;
    if !first = None then first := Some (Sim.Engine.now engine -. t0);
    pos := !pos + n
  done;
  (Option.value ~default:0.0 !first, Sim.Engine.now engine -. t0)

let ffs_times () =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let w = Config.make_world engine in
      let fs = Ffs.mkfs engine Config.ffs_params (Dev.of_disk w.Config.rz57) in
      List.map
        (fun (label, size) ->
          let path = "/" ^ label in
          let f = Ffs.create_file fs path in
          Ffs.write fs f ~off:0 (Bytes.create size);
          Ffs.sync fs;
          (* newly-mounted filesystem: no cached blocks *)
          Ffs.drop_caches fs;
          let ino = Ffs.namei fs path in
          (label, buffered_read engine (fun ~off ~len -> ignore (Ffs.read fs ino ~off ~len)) size))
        sizes)

let hl_times ~eject () =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let w = Config.make_world engine in
      let hl =
        Highlight.Hl.mkfs engine Config.paper_prm ~disk:(Dev.of_disk w.Config.rz57)
          ~fp:w.Config.fp ()
      in
      let fs = Highlight.Hl.fs hl in
      let paths = List.map (fun (label, _) -> "/" ^ label) sizes in
      List.iter2
        (fun path (_, size) ->
          let f = Dir.create_file fs path in
          File.write fs f ~off:0 (Bytes.create size))
        paths sizes;
      ignore (Highlight.Migrator.migrate_paths (Highlight.Hl.state hl) paths);
      (* the tertiary volume is already in a drive when the tests begin,
         as in the paper; small files share tertiary segments, so the
         whole set is ejected again before each measurement *)
      let rows =
        List.map2
          (fun path (label, size) ->
            if eject then Highlight.Hl.eject_tertiary_copies hl ~paths;
            Fs.drop_caches fs;
            let ino = Dir.namei fs path in
            let r =
              buffered_read engine (fun ~off ~len -> ignore (File.read fs ino ~off ~len)) size
            in
            (label, r))
          paths sizes
      in
      Config.harvest_metrics (Highlight.Hl.metrics hl);
      Highlight.Hl.shutdown_service hl;
      rows)

let run () =
  let ffs = ffs_times () in
  let cached = hl_times ~eject:false () in
  let uncached = hl_times ~eject:true () in
  let table =
    Tablefmt.create ~title:"Table 3: access delays (seconds; paper -> measured)"
      ~header:
        [ "File"; "FFS first"; "FFS total"; "HL cached first"; "HL cached total";
          "HL uncached first"; "HL uncached total" ]
  in
  List.iter
    (fun (label, _bytes, (pf1, pf2), (pc1, pc2), (pu1, pu2)) ->
      let f1, f2 = List.assoc label ffs in
      let c1, c2 = List.assoc label cached in
      let u1, u2 = List.assoc label uncached in
      let cell p m = Printf.sprintf "%5.2f -> %5.2f" p m in
      Tablefmt.add_row table
        [ label; cell pf1 f1; cell pf2 f2; cell pc1 c1; cell pc2 c2; cell pu1 u1; cell pu2 u2 ])
    Config.paper_table3;
  Tablefmt.print table;
  print_endline
    "  shape checks: first-byte is flat across sizes within a config; uncached pays seconds";
  print_endline
    "  (MO read + disk staging + re-read) per segment, growing with file size."
