(* Engine fast-path bench: events/sec and minor-words/event for the
   simulator core, plus the single-copy demand-fetch data path.

   Four workloads:
     pure-timer   N self-rescheduling timer callbacks — the event heap
                  and dispatch, nothing else (no fibers).
     proc-delay   N coroutine processes looping over [delay] — the
                  heap plus the effect-resumption path.
     condvar-ping two processes handing a token back and forth through
                  a condition variable — suspend/wake scheduling.
     demand-fetch the full stack: files migrated to an MO jukebox and
                  read back through the service layer, cache landing
                  included. Normalised per fetch, since the event count
                  is workload-defined rather than engine-defined.

   Each workload runs on the current engine and on [Legacy], a frozen
   copy of the pre-PR engine (polymorphic-compare binary heap, boxed
   event records, a fresh closure per resumption, leaky pop), so the
   speedup is measured in one binary on one host. An instrumented
   variant of pure-timer exercises the trace/ledger hot-path guards
   with no consumer installed; CI asserts it stays within 5% of the
   bare loop ("zero cost when off").

   Results go to stdout and BENCH_engine.json (schema
   highlight-bench-engine/v1); the committed copy of that file is the
   regression baseline CI compares fresh runs against. *)

open Lfs

(* ---------- the frozen pre-PR engine ---------- *)

(* Verbatim copy (modulo module paths) of lib/sim/engine.ml and the
   relevant half of lib/util/heap.ml as of the commit before the
   fast-path rewrite. Kept here so the bench's baseline cannot drift
   when the live engine changes. *)
module Legacy = struct
  module Heap = struct
    type 'a t = { mutable data : 'a array; mutable size : int; cmp : 'a -> 'a -> int }

    let create ~cmp = { data = [||]; size = 0; cmp }

    let grow t x =
      let cap = Array.length t.data in
      if t.size >= cap then begin
        let ncap = max 16 (2 * cap) in
        let ndata = Array.make ncap x in
        Array.blit t.data 0 ndata 0 t.size;
        t.data <- ndata
      end

    let rec sift_up t i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if t.cmp t.data.(i) t.data.(parent) < 0 then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(parent);
          t.data.(parent) <- tmp;
          sift_up t parent
        end
      end

    let rec sift_down t i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
      if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
      if !smallest <> i then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(!smallest);
        t.data.(!smallest) <- tmp;
        sift_down t !smallest
      end

    let push t x =
      grow t x;
      t.data.(t.size) <- x;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)

    let pop t =
      if t.size = 0 then None
      else begin
        let top = t.data.(0) in
        t.size <- t.size - 1;
        if t.size > 0 then begin
          t.data.(0) <- t.data.(t.size);
          sift_down t 0
        end;
        Some top
      end
  end

  type event = { time : float; seq : int; action : unit -> unit }

  type t = {
    mutable now : float;
    events : event Heap.t;
    mutable seq : int;
    mutable next_pid : int;
    blocked : (int, string) Hashtbl.t;
    mutable running : (int * string) option;
  }

  type _ Effect.t +=
    | Delay : float -> unit Effect.t
    | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

  let create ?capacity:_ () =
    let cmp a b =
      if a.time = b.time then compare a.seq b.seq else compare a.time b.time
    in
    {
      now = 0.0;
      events = Heap.create ~cmp;
      seq = 0;
      next_pid = 0;
      blocked = Hashtbl.create 16;
      running = None;
    }

  let schedule_at t time action =
    t.seq <- t.seq + 1;
    Heap.push t.events { time; seq = t.seq; action }

  (* what a recurring timer costs on the old engine: a fresh boxed
     event record through the polymorphic-compare heap per firing *)
  type timer = unit -> unit

  let timer _t f : timer = f
  let arm t (f : timer) ~after = schedule_at t (t.now +. Float.max 0.0 after) f

  let delay d = Effect.perform (Delay (Float.max 0.0 d))
  let suspend register = Effect.perform (Suspend register)

  let spawn t ?name f =
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    let pname = match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid in
    let enter body () =
      let prev = t.running in
      t.running <- Some (pid, pname);
      Fun.protect ~finally:(fun () -> t.running <- prev) body
    in
    let handler =
      {
        Effect.Deep.retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay d ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    schedule_at t (t.now +. d)
                      (enter (fun () -> Effect.Deep.continue k ())))
            | Suspend register ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    Hashtbl.replace t.blocked pid pname;
                    let fired = ref false in
                    let wake () =
                      if not !fired then begin
                        fired := true;
                        Hashtbl.remove t.blocked pid;
                        schedule_at t t.now (enter (fun () -> Effect.Deep.continue k ()))
                      end
                    in
                    register wake)
            | _ -> None);
      }
    in
    schedule_at t t.now (enter (fun () -> Effect.Deep.match_with f () handler))

  let run t =
    let rec loop () =
      match Heap.pop t.events with
      | None -> ()
      | Some ev ->
          if ev.time > t.now then t.now <- ev.time;
          ev.action ();
          loop ()
    in
    loop ()
end

(* ---------- workloads, shared between engines ---------- *)

module type ENGINE = sig
  type t

  val create : ?capacity:int -> unit -> t
  val spawn : t -> ?name:string -> (unit -> unit) -> unit

  type timer

  val timer : t -> (unit -> unit) -> timer
  val arm : t -> timer -> after:float -> unit
  val delay : float -> unit
  val suspend : ((unit -> unit) -> unit) -> unit
  val run : t -> unit
end

module Current : ENGINE = Sim.Engine

module Workloads (E : ENGINE) = struct
  (* [nprocs] coroutines looping over [delay]: adds the effect
     perform/continue round trip and fiber switching to the above. *)
  let proc_delay ~nprocs ~iters () =
    let e = E.create ~capacity:(2 * nprocs) () in
    for p = 0 to nprocs - 1 do
      E.spawn e (fun () ->
          let dt = 0.5 +. (float_of_int (p mod 16) /. 16.0) in
          for _ = 1 to iters do
            E.delay dt
          done)
    done;
    E.run e;
    nprocs * iters

  (* Two processes handing a token through a bare wake-list condvar:
     2 * rounds suspend/wake events. *)
  let condvar_ping ~rounds () =
    let e = E.create () in
    let waiters_a = ref [] and waiters_b = ref [] in
    let wait w = E.suspend (fun wake -> w := wake :: !w) in
    let signal w =
      match !w with
      | [] -> ()
      | wake :: rest ->
          w := rest;
          wake ()
    in
    E.spawn e ~name:"pong" (fun () ->
        for _ = 1 to rounds do
          wait waiters_b;
          signal waiters_a
        done);
    E.spawn e ~name:"ping" (fun () ->
        for _ = 1 to rounds do
          signal waiters_b;
          wait waiters_a
        done);
    E.run e;
    2 * rounds
end

module W_current = Workloads (Current)
module W_legacy = Workloads (Legacy)

(* The pure-timer workload is written directly against each engine
   rather than through the [Workloads] functor: behind the signature
   every [arm] is an indirect call with a boxed float argument, a tax
   that is pure measurement noise for a path this short. [nprocs]
   concurrent self-rescheduling timer callbacks, phases spread so the
   heap stays deep and ties still occur; no fiber is created or
   switched. *)
let pure_timer_current ~nprocs ~iters () =
  let e = Sim.Engine.create ~capacity:(2 * nprocs) () in
  let live = ref nprocs in
  for p = 0 to nprocs - 1 do
    let dt = 0.5 +. (float_of_int (p mod 16) /. 16.0) in
    let remaining = ref iters in
    let tm = ref (Sim.Engine.timer e ignore) in
    let tick () =
      decr remaining;
      if !remaining > 0 then Sim.Engine.arm e !tm ~after:dt else decr live
    in
    tm := Sim.Engine.timer e tick;
    Sim.Engine.arm e !tm ~after:dt
  done;
  Sim.Engine.run e;
  assert (!live = 0);
  nprocs * iters

let pure_timer_legacy ~nprocs ~iters () =
  let e = Legacy.create () in
  let live = ref nprocs in
  for p = 0 to nprocs - 1 do
    let dt = 0.5 +. (float_of_int (p mod 16) /. 16.0) in
    let remaining = ref iters in
    let tm = ref (Legacy.timer e ignore) in
    let tick () =
      decr remaining;
      if !remaining > 0 then Legacy.arm e !tm ~after:dt else decr live
    in
    tm := Legacy.timer e tick;
    Legacy.arm e !tm ~after:dt
  done;
  Legacy.run e;
  assert (!live = 0);
  nprocs * iters

(* pure-timer with the instrumentation hooks a hot device loop carries,
   with no tracer or ledger installed: the guards must make this
   indistinguishable from the bare loop. *)
let pure_timer_instr ~nprocs ~iters () =
  let e = Sim.Engine.create ~capacity:(2 * nprocs) () in
  let live = ref nprocs in
  for p = 0 to nprocs - 1 do
    let dt = 0.5 +. (float_of_int (p mod 16) /. 16.0) in
    let remaining = ref iters in
    let tm = ref (Sim.Engine.timer e ignore) in
    let tick () =
      if Sim.Trace.enabled () then
        Sim.Trace.instant ~cat:"bench" ~args:[ ("i", string_of_int !remaining) ] "tick";
      Sim.Ledger.charge_active Sim.Ledger.Queue_wait 0.0;
      decr remaining;
      if !remaining > 0 then Sim.Engine.arm e !tm ~after:dt else decr live
    in
    tm := Sim.Engine.timer e tick;
    Sim.Engine.arm e !tm ~after:dt
  done;
  Sim.Engine.run e;
  assert (!live = 0);
  nprocs * iters

(* The same instrumented loop with the flight recorder's ring tracer
   live (64k-event ring, 1-in-32 sampling — the health plane's
   always-on configuration): the price of leaving the black box armed
   must stay inside the same 5% budget as the bare guards. The call
   site guards with [Trace.keep] rather than [Trace.enabled], the
   idiom for per-event hot paths: a sampled-out tick never builds its
   argument list. *)
let pure_timer_flight ~nprocs ~iters () =
  let e = Sim.Engine.create ~capacity:(2 * nprocs) () in
  let fl = Sim.Flight.start ~ring:65536 ~sample:32 e in
  let live = ref nprocs in
  for p = 0 to nprocs - 1 do
    let dt = 0.5 +. (float_of_int (p mod 16) /. 16.0) in
    let remaining = ref iters in
    let tm = ref (Sim.Engine.timer e ignore) in
    let tick () =
      if Sim.Trace.keep () then
        Sim.Trace.instant ~cat:"bench" ~args:[ ("i", string_of_int !remaining) ] "tick";
      Sim.Ledger.charge_active Sim.Ledger.Queue_wait 0.0;
      decr remaining;
      if !remaining > 0 then Sim.Engine.arm e !tm ~after:dt else decr live
    in
    tm := Sim.Engine.timer e tick;
    Sim.Engine.arm e !tm ~after:dt
  done;
  Sim.Engine.run e;
  Sim.Flight.stop fl;
  assert (!live = 0);
  nprocs * iters

(* ---------- demand-fetch workload (current stack only) ---------- *)

let pattern tag nbytes = Bytes.init nbytes (fun i -> Char.chr ((tag + (i * 31)) land 0xff))

let df_nfiles = 8
let df_file_blocks = 64
let df_rounds = 4

let demand_fetch () =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let world = Config.make_world engine in
      let hl =
        Highlight.Hl.mkfs engine Config.paper_prm
          ~disk:(Dev.of_disk world.Config.rz57)
          ~fp:world.Config.fp ~cache_segs:4 ()
      in
      let st = Highlight.Hl.state hl in
      let prm = Config.paper_prm in
      let file_bytes = df_file_blocks * prm.Param.block_size in
      let paths = List.init df_nfiles (fun i -> Printf.sprintf "/f%d" i) in
      List.iteri
        (fun i path -> Highlight.Hl.write_file hl path (pattern (i + 1) file_bytes))
        paths;
      Fs.checkpoint (Highlight.Hl.fs hl);
      st.Highlight.State.restrict_volume <- Some 0;
      List.iter
        (fun path -> ignore (Highlight.Migrator.migrate_paths st ~with_inodes:false [ path ]))
        paths;
      st.Highlight.State.restrict_volume <- None;
      Highlight.Hl.reset_stats hl;
      let ok = ref true in
      for round = 1 to df_rounds do
        Highlight.Hl.eject_tertiary_copies hl ~paths;
        List.iteri
          (fun i path ->
            let data = Highlight.Hl.read_file hl path () in
            if not (Bytes.equal data (pattern (i + 1) file_bytes)) then ok := false;
            ignore round)
          paths
      done;
      let s = Highlight.Hl.stats hl in
      Highlight.Hl.shutdown_service hl;
      if not !ok then failwith "engine bench: demand-fetch data mismatch";
      s.Highlight.Hl.demand_fetches)

(* ---------- measurement ---------- *)

type sample = { per_sec : float; minor_per_unit : float; wall_s : float; units : int }

let measure f =
  Gc.full_major ();
  let m0 = Gc.minor_words () in
  let w0 = Unix.gettimeofday () in
  let units = f () in
  let wall = Unix.gettimeofday () -. w0 in
  let minor = Gc.minor_words () -. m0 in
  {
    per_sec = float_of_int units /. wall;
    minor_per_unit = minor /. float_of_int units;
    wall_s = wall;
    units;
  }

(* best-of to shrug off host noise; minor words from the last run *)
let best ?(n = 3) f =
  let r = ref (measure f) in
  for _ = 2 to n do
    let s = measure f in
    if s.per_sec > !r.per_sec then r := s
  done;
  !r

(* Interleaved best-of for a group of workloads whose *ratios* are the
   result: round-robin runs see the same host weather, so slow drift
   cancels out of the ratios instead of landing on whichever side
   happened to run later. *)
let best_group ?(n = 5) fs =
  let rounds = Array.init n (fun _ -> Array.map measure fs) in
  let bs = Array.copy rounds.(0) in
  Array.iter
    (Array.iteri (fun i s -> if s.per_sec > bs.(i).per_sec then bs.(i) <- s))
    rounds;
  (bs, rounds)

(* For a ratio whose true value is ~1 (e.g. instrumented-but-off vs
   bare), comparing two independently-maxed noisy numbers amplifies
   noise into the result. Pair the two runs within each round — they
   see the same host weather back-to-back — and take the median round
   ratio. *)
let median_round_ratio rounds i j =
  let rs = Array.map (fun (r : sample array) -> r.(i).per_sec /. r.(j).per_sec) rounds in
  Array.sort Float.compare rs;
  rs.(Array.length rs / 2)

(* ---------- pre-PR reference (committed baseline) ---------- *)

(* Measured on the dev container on the commit before the fast-path
   rewrite (tree 9118b65 + this bench): the absolute numbers the
   acceptance criteria compare against. The in-binary [Legacy] runs
   re-measure pre-PR engine code on whatever host CI gives us, so only
   numbers that cannot be reproduced in-binary are pinned here: the
   demand-fetch allocation rate (the whole data path changed, not just
   the engine) and the soak wall clock (best of 6 runs of
   soak/soak.exe, measured on the dev container). *)
let pre_pr_fetch_minor = 20_425.0
let pre_pr_soak_wall_s = 3.11
let post_pr_soak_wall_s = 2.22 (* same protocol, after the rewrite *)

(* 64k concurrent timers/processes: a deep event heap is where the
   engines structurally diverge (4-ary SoA vs boxed binary heap is a
   depth-and-cache-miss story), and it is the regime a full-machine
   simulation with per-file and per-device processes actually runs
   in. Small populations measure dispatch overhead only and understate
   the gap. *)
let nprocs = 65536
let iters = 16
let rounds = 500_000

let run () =
  Printf.printf "engine micro-bench: %d timers x %d ticks, %d ping rounds\n%!" nprocs
    iters rounds;
  let group, grounds =
    (* best-of-9: this often runs on a single shared core, where any
       co-tenant burst deflates one round; the interleaved max is the
       noise-resistant estimator *)
    best_group ~n:9
      [|
        pure_timer_current ~nprocs ~iters;
        pure_timer_instr ~nprocs ~iters;
        pure_timer_legacy ~nprocs ~iters;
        W_current.proc_delay ~nprocs ~iters;
        W_legacy.proc_delay ~nprocs ~iters;
        W_current.condvar_ping ~rounds;
        W_legacy.condvar_ping ~rounds;
        pure_timer_flight ~nprocs ~iters;
      |]
  in
  let pt_new = group.(0)
  and pt_instr = group.(1)
  and pt_old = group.(2)
  and pd_new = group.(3)
  and pd_old = group.(4)
  and cv_new = group.(5)
  and cv_old = group.(6)
  and pt_flight = group.(7) in
  let df = best ~n:2 demand_fetch in
  let row name (s : sample) =
    Printf.printf "  %-24s %10.0f /s   %7.1f minor words/unit   (%d units, %.3fs)\n" name
      s.per_sec s.minor_per_unit s.units s.wall_s
  in
  row "pure-timer (new)" pt_new;
  row "pure-timer (legacy)" pt_old;
  row "pure-timer (instr off)" pt_instr;
  row "pure-timer (flight ring)" pt_flight;
  row "proc-delay (new)" pd_new;
  row "proc-delay (legacy)" pd_old;
  row "condvar-ping (new)" cv_new;
  row "condvar-ping (legacy)" cv_old;
  row "demand-fetch (/fetch)" df;
  Printf.printf "  speedup vs legacy: pure-timer %.2fx, proc-delay %.2fx, condvar %.2fx\n"
    (pt_new.per_sec /. pt_old.per_sec)
    (pd_new.per_sec /. pd_old.per_sec)
    (cv_new.per_sec /. cv_old.per_sec);
  (* The pre-PR engine had no timer API: its only way to express N
     recurring timers was one delay-loop fiber per timer. The headline
     ratio is therefore new-timer-path vs legacy-fiber-path on the same
     workload, measured in this binary in this run. *)
  Printf.printf "  pure-timer vs pre-PR fiber expression: %.2fx\n"
    (pt_new.per_sec /. pd_old.per_sec);
  let instr_off_pct = 100.0 *. (median_round_ratio grounds 0 1 -. 1.0) in
  Printf.printf "  instr-off overhead: %.1f%% (median paired round)\n" instr_off_pct;
  let flight_ring_pct = 100.0 *. (median_round_ratio grounds 0 7 -. 1.0) in
  Printf.printf "  flight-ring overhead: %.1f%% (median paired round, ring 64k sample 32)\n"
    flight_ring_pct;
  let oc = open_out "BENCH_engine.json" in
  let fld name (s : sample) =
    Printf.sprintf
      "  %S: { \"per_sec\": %.0f, \"minor_words_per_unit\": %.2f, \"wall_s\": %.4f, \
       \"units\": %d }"
      name s.per_sec s.minor_per_unit s.wall_s s.units
  in
  Printf.fprintf oc "{\n  \"schema\": \"highlight-bench-engine/v1\",\n%s\n"
    (String.concat ",\n"
       [
         fld "pure_timer" pt_new;
         fld "pure_timer_legacy" pt_old;
         fld "pure_timer_instr_off" pt_instr;
         fld "pure_timer_flight_ring" pt_flight;
         fld "proc_delay" pd_new;
         fld "proc_delay_legacy" pd_old;
         fld "condvar_ping" cv_new;
         fld "condvar_ping_legacy" cv_old;
         fld "demand_fetch_per_fetch" df;
       ]);
  Printf.fprintf oc
    ",\n\
    \  \"speedup_vs_legacy\": { \"pure_timer\": %.3f, \"proc_delay\": %.3f, \
     \"condvar_ping\": %.3f },\n"
    (pt_new.per_sec /. pt_old.per_sec)
    (pd_new.per_sec /. pd_old.per_sec)
    (cv_new.per_sec /. cv_old.per_sec);
  Printf.fprintf oc "  \"instr_off_overhead_pct\": %.2f,\n" instr_off_pct;
  Printf.fprintf oc "  \"flight_ring_overhead_pct\": %.2f,\n" flight_ring_pct;
  Printf.fprintf oc
    "  \"pre_pr_baseline\": { \"demand_fetch_minor_words_per_fetch\": %.0f, \
     \"soak_wall_s\": %.2f },\n"
    pre_pr_fetch_minor pre_pr_soak_wall_s;
  Printf.fprintf oc
    "  \"speedup_vs_pre_pr\": { \"pure_timer\": %.3f, \"proc_delay\": %.3f, \
     \"demand_fetch_minor_words\": %.3f, \"note\": \"the pre-PR engine had no timer API; \
     pure_timer compares the new timer path against the pre-PR engine running the same N \
     recurring timers the only way it could, one delay-loop fiber per timer \
     (proc_delay_legacy), in this same binary and run\" },\n"
    (pt_new.per_sec /. pd_old.per_sec)
    (pd_new.per_sec /. pd_old.per_sec)
    (pre_pr_fetch_minor /. df.minor_per_unit);
  Printf.fprintf oc "  \"soak_wall_s\": { \"pre_pr\": %.2f, \"post_pr\": %.2f }\n}\n"
    pre_pr_soak_wall_s post_pr_soak_wall_s;
  close_out oc;
  Printf.printf "  wrote BENCH_engine.json\n%!"
