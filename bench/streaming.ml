(* Streaming-fetch bench: the first-block wakeup and the adaptive
   readahead, quantified.

   Phase 1 runs the same tape-backed demand-read workload with the
   streaming fetch on and off. Tape is where the paper's whole-segment
   fetch hurts most: large segments amortise the Metrum's 8 s locate
   startup, so a 16 MB segment spends ~15 s crossing the drive — all of
   which a blocking reader waits out for one 4 KB block. The streaming
   fetch wakes that reader after the first chunk. Device throughput
   (segment bytes per second of tertiary busy time) must not move:
   chunked delivery changes who wakes when, not how the tape streams.

   Phases 2 and 3 drive the accuracy-adaptive readahead over a
   sequential and a uniformly random workload, against the fixed
   depth-4 policy the paper's clustering suggests, and report prefetch
   accuracy and waste.

   Results go to stdout and to BENCH_streaming.json (schema
   highlight-bench-streaming/v1) for CI trend tracking. *)

open Lfs

(* ---------- phase 1: tape first-block latency ---------- *)

let tape_seg_blocks = 4096 (* 16 MB segments: tape wants large units *)
let tape_file_blocks = 500 (* 2 MB files: direct + one indirect level *)
let tape_nfiles = 4

let pattern tag nbytes = Bytes.init nbytes (fun i -> Char.chr ((tag + (i * 31)) land 0xff))

type latency_run = {
  first_p50 : float;
  first_p95 : float;
  (* device-level segment throughput: fetched bytes / tertiary busy time *)
  seg_throughput : float;
  read_elapsed : float; (* end-to-end: all files, first block + full read *)
  fetches : int;
  tertiary_busy : float;
  ok : bool;
  mutable attribution : (string * (string * float) list) list;
}

let run_latency ~streaming =
  let engine = Sim.Engine.create () in
  let r =
    Config.in_sim engine (fun () ->
      let bus = Device.Scsi_bus.create engine "scsi0" in
      let disk = Device.Disk.create engine ~bus Device.Disk.rz57 ~name:"rz57" in
      let jukebox =
        Device.Jukebox.create engine ~drives:2 ~nvolumes:2
          ~vol_capacity:(8 * tape_seg_blocks) ~media:Device.Jukebox.metrum_tape
          ~changer:Device.Jukebox.metrum_changer "metrum"
      in
      let fp = Footprint.create ~seg_blocks:tape_seg_blocks ~segs_per_volume:8 [ jukebox ] in
      let dev = Dev.of_disk disk in
      let prm =
        {
          Config.paper_prm with
          Param.seg_blocks = tape_seg_blocks;
          nsegs = (dev.Dev.nblocks / tape_seg_blocks) - 1;
        }
      in
      let hl = Highlight.Hl.mkfs engine prm ~disk:dev ~fp () in
      Highlight.Hl.set_streaming_fetch hl streaming;
      let st = Highlight.Hl.state hl in
      let fsys = Highlight.Hl.fs hl in
      let file_bytes = tape_file_blocks * prm.Param.block_size in
      let paths = List.init tape_nfiles (fun i -> Printf.sprintf "/tape%d" i) in
      List.iteri
        (fun i path -> Highlight.Hl.write_file hl path (pattern (i + 1) file_bytes))
        paths;
      Fs.checkpoint fsys;
      st.Highlight.State.restrict_volume <- Some 0;
      (* inodes stay disk-resident: the measured fetches are file data *)
      List.iter
        (fun path ->
          ignore (Highlight.Migrator.migrate_paths st ~with_inodes:false [ path ]))
        paths;
      st.Highlight.State.restrict_volume <- None;
      Highlight.Hl.eject_tertiary_copies hl ~paths;
      Highlight.Hl.reset_stats hl;
      (* attribute the measured reads only, not the setup migration *)
      Sim.Ledger.install ~metrics:(Highlight.Hl.metrics hl) engine;
      let ok = ref true in
      let t0 = Sim.Engine.now engine in
      List.iteri
        (fun i path ->
          (* the 4 KB the user wanted: lands in first_block_latency_s *)
          let first = Highlight.Hl.read_file hl path ~off:0 ~len:prm.Param.block_size () in
          (* then the rest of the file, riding the same fetch *)
          let full = Highlight.Hl.read_file hl path () in
          let expect = pattern (i + 1) file_bytes in
          if
            (not (Bytes.equal full expect))
            || not (Bytes.equal first (Bytes.sub expect 0 prm.Param.block_size))
          then ok := false)
        paths;
      let read_elapsed = Sim.Engine.now engine -. t0 in
      (* quiesce: with streaming on, the tail of the last segment is
         still crossing the drive when the reader finishes — let it land
         so both modes charge the same transfers to the busy clock *)
      Sim.Engine.delay 120.0;
      let s = Highlight.Hl.stats hl in
      let fetched_bytes =
        s.Highlight.Hl.demand_fetches * tape_seg_blocks * prm.Param.block_size
      in
      let seg_throughput =
        if s.Highlight.Hl.io_tertiary_time > 0.0 then
          float_of_int fetched_bytes /. s.Highlight.Hl.io_tertiary_time
        else 0.0
      in
      Config.harvest_metrics (Highlight.Hl.metrics hl);
      Highlight.Hl.shutdown_service hl;
      {
        first_p50 = s.Highlight.Hl.first_block_p50;
        first_p95 = s.Highlight.Hl.first_block_p95;
        seg_throughput;
        read_elapsed;
        fetches = s.Highlight.Hl.demand_fetches;
        tertiary_busy = s.Highlight.Hl.io_tertiary_time;
        ok = !ok;
        attribution = [];
      })
  in
  r.attribution <-
    Config.take_attribution
      (Printf.sprintf "streaming.%s" (if streaming then "streaming" else "blocking"));
  r

(* ---------- phases 2/3: readahead accuracy ---------- *)

let ra_seg_blocks = 16
let ra_file_blocks = 12 (* all direct: one staged segment per file *)
let ra_nfiles = 24

type ra_world = { hl : Highlight.Hl.t; paths : string array }

let make_ra_world ?(cache_segs = 12) engine =
  let prm = Param.for_tests ~seg_blocks:ra_seg_blocks ~nsegs:96 () in
  let store =
    Device.Blockstore.create ~block_size:prm.Param.block_size
      ~nblocks:(Layout.disk_blocks prm)
  in
  let jukebox =
    Device.Jukebox.create engine ~drives:2 ~nvolumes:2
      ~vol_capacity:(32 * ra_seg_blocks) ~media:Device.Jukebox.hp6300_platter
      ~changer:Device.Jukebox.hp6300_changer "hp6300"
  in
  let fp = Footprint.create ~seg_blocks:ra_seg_blocks ~segs_per_volume:32 [ jukebox ] in
  let hl = Highlight.Hl.mkfs engine prm ~disk:(Dev.of_store store) ~fp ~cache_segs () in
  let st = Highlight.Hl.state hl in
  let fsys = Highlight.Hl.fs hl in
  let file_bytes = ra_file_blocks * prm.Param.block_size in
  let paths = Array.init ra_nfiles (fun i -> Printf.sprintf "/f%02d" i) in
  Array.iteri (fun i path -> Highlight.Hl.write_file hl path (pattern (i + 1) file_bytes)) paths;
  Fs.checkpoint fsys;
  st.Highlight.State.restrict_volume <- Some 0;
  (* one migrate call per file, inodes disk-resident: file i is exactly
     tertiary segment i, so sequential files are sequential segments *)
  Array.iter
    (fun path -> ignore (Highlight.Migrator.migrate_paths st ~with_inodes:false [ path ]))
    paths;
  st.Highlight.State.restrict_volume <- None;
  Highlight.Hl.eject_tertiary_copies hl ~paths:(Array.to_list paths);
  Highlight.Hl.reset_stats hl;
  { hl; paths }

let read_all hl path = ignore (Highlight.Hl.read_file hl path ())

let run_sequential_adaptive () =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let w = make_ra_world engine in
      let ra = Highlight.Hl.set_prefetch_adaptive w.hl () in
      Array.iter
        (fun path ->
          read_all w.hl path;
          (* think time: in-flight prefetches land before the next file *)
          Sim.Engine.delay 30.0)
        w.paths;
      let s = Highlight.Hl.stats w.hl in
      Highlight.Hl.shutdown_service w.hl;
      ( s.Highlight.Hl.prefetch_accuracy,
        s.Highlight.Hl.prefetches_used,
        s.Highlight.Hl.prefetches_wasted,
        Highlight.Readahead.depth ra ))

(* deterministic LCG so the two random runs replay the same accesses *)
let random_order n reads =
  let seed = ref 12345 in
  List.init reads (fun _ ->
      seed := ((!seed * 1103515245) + 12345) land 0x3fffffff;
      !seed mod n)

let run_random policy_label install =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let w = make_ra_world ~cache_segs:6 engine in
      install w.hl;
      List.iter
        (fun i ->
          read_all w.hl w.paths.(i);
          Sim.Engine.delay 30.0)
        (random_order ra_nfiles 40);
      let s = Highlight.Hl.stats w.hl in
      Highlight.Hl.shutdown_service w.hl;
      ignore policy_label;
      (s.Highlight.Hl.prefetches_used, s.Highlight.Hl.prefetches_wasted))

(* ---------- driver ---------- *)

(* demand-fetch category blame as a JSON object (seconds per category) *)
let attr_json attribution =
  match List.assoc_opt "demand_fetch" attribution with
  | None -> "{}"
  | Some cats ->
      "{ "
      ^ String.concat ", " (List.map (fun (c, v) -> Printf.sprintf "%S: %.6f" c v) cats)
      ^ " }"

let run () =
  let blocking = run_latency ~streaming:false in
  let streaming = run_latency ~streaming:true in
  let seq_accuracy, seq_used, seq_wasted, seq_depth = run_sequential_adaptive () in
  let fixed_used, fixed_wasted =
    run_random "fixed-4" (fun hl -> Highlight.Hl.set_prefetch_sequential hl ~depth:4)
  in
  let adaptive_used, adaptive_wasted =
    run_random "adaptive" (fun hl -> ignore (Highlight.Hl.set_prefetch_adaptive hl ()))
  in
  let t =
    Util.Tablefmt.create
      ~title:
        (Printf.sprintf
           "Streaming demand fetch: %d MB tape segments, %d files, 4 KB first read"
           (tape_seg_blocks * 4096 / 1024 / 1024)
           tape_nfiles)
      ~header:
        [
          "mode";
          "first-block p50 (s)";
          "p95 (s)";
          "seg MB/s";
          "fetches";
          "busy (s)";
          "elapsed (s)";
          "bytes";
        ]
  in
  let row name (r : latency_run) =
    Util.Tablefmt.add_row t
      [
        name;
        Printf.sprintf "%.2f" r.first_p50;
        Printf.sprintf "%.2f" r.first_p95;
        Printf.sprintf "%.3f" (r.seg_throughput /. 1024.0 /. 1024.0);
        string_of_int r.fetches;
        Printf.sprintf "%.1f" r.tertiary_busy;
        Printf.sprintf "%.1f" r.read_elapsed;
        (if r.ok then "identical" else "CORRUPT");
      ]
  in
  row "blocking" blocking;
  row "streaming" streaming;
  Util.Tablefmt.print t;
  let speedup =
    if streaming.first_p50 > 0.0 then blocking.first_p50 /. streaming.first_p50 else 0.0
  in
  let tput_ratio =
    if blocking.seg_throughput > 0.0 then streaming.seg_throughput /. blocking.seg_throughput
    else 0.0
  in
  Printf.printf "  first-block speedup: %.2fx (target >= 2x)  [%s]\n" speedup
    (if speedup >= 2.0 && blocking.ok && streaming.ok then "ok" else "FAIL");
  Printf.printf "  segment throughput ratio: %.3f (target 1 +/- 0.05)  [%s]\n" tput_ratio
    (if tput_ratio >= 0.95 && tput_ratio <= 1.05 then "ok" else "FAIL");
  Printf.printf
    "  adaptive readahead, sequential: accuracy %.2f (target >= 0.8), used %d, wasted %d, \
     depth %d  [%s]\n"
    seq_accuracy seq_used seq_wasted seq_depth
    (if seq_accuracy >= 0.8 then "ok" else "FAIL");
  Printf.printf
    "  random workload waste: adaptive %d vs fixed-4 %d (target: adaptive lower)  [%s]\n"
    adaptive_wasted fixed_wasted
    (if adaptive_wasted < fixed_wasted then "ok" else "FAIL");
  let oc = open_out "BENCH_streaming.json" in
  Printf.fprintf oc
    {|{
  "schema": "highlight-bench-streaming/v1",
  "tape_segment_bytes": %d,
  "first_block_latency_s": {
    "blocking": { "p50": %.6f, "p95": %.6f },
    "streaming": { "p50": %.6f, "p95": %.6f },
    "speedup_p50": %.3f
  },
  "segment_throughput_bytes_s": {
    "blocking": %.1f,
    "streaming": %.1f,
    "ratio": %.4f
  },
  "read_elapsed_s": { "blocking": %.2f, "streaming": %.2f },
  "adaptive_sequential": { "accuracy": %.4f, "used": %d, "wasted": %d, "final_depth": %d },
  "random_workload": {
    "fixed4": { "used": %d, "wasted": %d },
    "adaptive": { "used": %d, "wasted": %d }
  },
  "attribution": {
    "blocking": %s,
    "streaming": %s
  },
  "verified": %b
}
|}
    (tape_seg_blocks * 4096) blocking.first_p50 blocking.first_p95 streaming.first_p50
    streaming.first_p95 speedup blocking.seg_throughput streaming.seg_throughput tput_ratio
    blocking.read_elapsed streaming.read_elapsed seq_accuracy seq_used seq_wasted seq_depth
    fixed_used fixed_wasted adaptive_used adaptive_wasted
    (attr_json blocking.attribution)
    (attr_json streaming.attribution)
    (blocking.ok && streaming.ok);
  close_out oc;
  print_endline "  wrote BENCH_streaming.json"
