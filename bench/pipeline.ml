(* Pipeline bench: the demand-fetch-heavy scenario the pipelined
   service/I-O layer exists for. Two 8 MB files are migrated to two
   different MO volumes; two concurrent readers then stream them back in
   1 MB chunks with sequential prefetch depth 2, forcing a steady train
   of demand fetches plus prefetches. The same run is timed under the
   serial baseline ([State.Serial], the paper's one-request-at-a-time
   configuration) and the pipelined worker pool; with two jukebox drives
   and the cache disk on its own SCSI bus, the pipelined mode overlaps
   both drives' reads with the cache-disk writes.

   Reported: simulated elapsed time per mode, the speedup, the overlap
   factor (phase busy time / busy-span wall time), and a byte-for-byte
   verification of everything read back. *)

open Lfs

let file_bytes = 8 * 1024 * 1024
let chunk = 1024 * 1024

let pattern tag = Bytes.init file_bytes (fun i -> Char.chr ((tag + (i * 31)) land 0xff))

type run = {
  elapsed : float;
  ok : bool;
  fetches : int;
  prefetches_dropped : int;
  overlap : float;
  swaps : int;
  alerts : int;  (* health-plane alerts: a clean scenario must fire none *)
  (* class -> blame-ranked (category, seconds): why the elapsed time *)
  mutable attribution : (string * (string * float) list) list;
}

let run_mode label io_mode =
  let engine = Sim.Engine.create () in
  let r =
    Config.in_sim engine (fun () ->
      (* cache disk on its own bus; the jukebox drives are bus-less so
         the tertiary and disk transfer phases can truly overlap *)
      let bus = Device.Scsi_bus.create engine "scsi0" in
      let disk = Device.Disk.create engine ~bus Device.Disk.rz57 ~name:"rz57" in
      let jukebox =
        Device.Jukebox.create engine ~drives:2 ~nvolumes:8 ~vol_capacity:10240
          ~media:Device.Jukebox.hp6300_platter ~changer:Device.Jukebox.hp6300_changer
          "hp6300"
      in
      let fp = Footprint.create ~seg_blocks:256 ~segs_per_volume:40 [ jukebox ] in
      let dev = Dev.of_disk disk in
      let prm = { Config.paper_prm with Param.nsegs = (dev.Dev.nblocks / 256) - 1 } in
      let hl = Highlight.Hl.mkfs engine prm ~disk:dev ~fp ~io_mode () in
      Highlight.Hl.set_prefetch_sequential hl ~depth:2;
      let st = Highlight.Hl.state hl in
      let fsys = Highlight.Hl.fs hl in
      let data_a = pattern 1 and data_b = pattern 2 in
      Highlight.Hl.write_file hl "/a" data_a;
      Highlight.Hl.write_file hl "/b" data_b;
      Fs.checkpoint fsys;
      (* pin the files to different volumes so each feeds its own drive *)
      st.Highlight.State.restrict_volume <- Some 0;
      ignore (Highlight.Migrator.migrate_paths st [ "/a" ]);
      st.Highlight.State.restrict_volume <- Some 1;
      ignore (Highlight.Migrator.migrate_paths st [ "/b" ]);
      st.Highlight.State.restrict_volume <- None;
      Highlight.Hl.eject_tertiary_copies hl ~paths:[ "/a"; "/b" ];
      Highlight.Hl.reset_stats hl;
      (* attribute only the measured phase: the setup writeouts above
         are not what the serial-vs-pipelined comparison is about *)
      Sim.Ledger.install ~metrics:(Highlight.Hl.metrics hl) engine;
      (* clean scenario under the same SLO as the faulty bench: the
         health plane must stay silent here *)
      let health =
        match Obs.Health.parse "fetch_p99: demand_fetch.p99 < 40s\nerr: error_rate < 1%\n" with
        | Error msg -> failwith ("pipeline bench: bad SLO: " ^ msg)
        | Ok objectives ->
            Obs.Health.install ~quiet:true ~metrics:(Highlight.Hl.metrics hl) engine
              objectives
      in
      let swaps0 = Footprint.swaps fp in
      let t0 = Sim.Engine.now engine in
      let done_cv = Sim.Condvar.create () in
      let remaining = ref 2 in
      let ok = ref true in
      let reader name path data =
        Sim.Engine.spawn engine ~name (fun () ->
            let buf = Buffer.create file_bytes in
            for i = 0 to (file_bytes / chunk) - 1 do
              Buffer.add_bytes buf
                (Highlight.Hl.read_file hl path ~off:(i * chunk) ~len:chunk ())
            done;
            if not (String.equal (Buffer.contents buf) (Bytes.to_string data)) then
              ok := false;
            decr remaining;
            Sim.Condvar.broadcast done_cv)
      in
      reader "reader-a" "/a" data_a;
      reader "reader-b" "/b" data_b;
      while !remaining > 0 do
        Sim.Condvar.wait done_cv
      done;
      let elapsed = Sim.Engine.now engine -. t0 in
      let s = Highlight.Hl.stats hl in
      Config.harvest_metrics (Highlight.Hl.metrics hl);
      Highlight.Hl.shutdown_service hl;
      Obs.Health.stop health;
      {
        elapsed;
        ok = !ok;
        fetches = s.Highlight.Hl.demand_fetches;
        prefetches_dropped = s.Highlight.Hl.prefetches_dropped;
        overlap = s.Highlight.Hl.io_overlap;
        swaps = Footprint.swaps fp - swaps0;
        alerts = List.length (Obs.Health.alerts health);
        attribution = [];
      })
  in
  r.attribution <- Config.take_attribution ("pipeline." ^ label);
  r

let run () =
  let serial = run_mode "serial" Highlight.State.Serial in
  let piped = run_mode "pipelined" Highlight.State.Pipelined in
  let t =
    Util.Tablefmt.create
      ~title:
        "Pipelined service/I-O: 2 concurrent 8 MB streams from 2 MO volumes, prefetch \
         depth 2"
      ~header:[ "mode"; "elapsed (s)"; "fetches"; "pf dropped"; "overlap"; "swaps"; "bytes" ]
  in
  let row name r =
    Util.Tablefmt.add_row t
      [
        name;
        Printf.sprintf "%.1f" r.elapsed;
        string_of_int r.fetches;
        string_of_int r.prefetches_dropped;
        Printf.sprintf "%.2fx" r.overlap;
        string_of_int r.swaps;
        (if r.ok then "identical" else "CORRUPT");
      ]
  in
  row "serial" serial;
  row "pipelined" piped;
  Util.Tablefmt.print t;
  let speedup = if piped.elapsed > 0.0 then serial.elapsed /. piped.elapsed else 0.0 in
  Printf.printf "  speedup: %.2fx (target >= 1.4x)  [%s]\n" speedup
    (if speedup >= 1.4 && serial.ok && piped.ok then "ok" else "FAIL");
  Printf.printf "  health plane: %d alert(s) on the clean scenario (must be 0)  [%s]\n"
    (serial.alerts + piped.alerts)
    (if serial.alerts = 0 && piped.alerts = 0 then "ok" else "FAIL");
  let dom r = Config.dominant_wait r.attribution "demand_fetch" in
  Printf.printf
    "  dominant demand-fetch wait: serial=%s (expect queue_wait: every request stacks\n\
    \  behind the single I/O process), pipelined=%s  [%s]\n"
    (dom serial) (dom piped)
    (if dom serial = "queue_wait" then "ok" else "FAIL");
  print_endline
    "  shape checks: pipelined overlap factor > serial's ~1.0; contents identical in\n\
    \  both modes; speedup comes from drive parallelism + read/write phase overlap."
