(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (USENIX '93 / UCB MS report), plus the ablations DESIGN.md
   calls out and Bechamel micro-benchmarks of the implementation.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- --only table2 # one experiment
     dune exec bench/main.exe -- --list        # targets
     dune exec bench/main.exe -- --json f.json # + per-target timings *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("table1", "partial-segment summary layout + checksum demo", Table1.run);
    ("table2", "large-object performance: FFS / LFS / HighLight", Table2.run);
    ("table3", "access delays incl. demand fetch from MO", Table3.run);
    ("table4", "migration elapsed-time breakdown", Table4_6.run);
    ("table5", "raw device calibration", Table5.run);
    ("table6", "(runs with table4: same instrumented migration)", ignore);
    ("fig1", "LFS on-disk layout (live dump)", Figs.run_fig1);
    ("fig2", "storage hierarchy (live dump)", Figs.run_fig2);
    ("fig3", "HighLight layout with cached tertiary segment", Figs.run_fig3);
    ("fig4", "block address allocation map", Figs.run_fig4);
    ("fig5", "layered architecture with live counters", Figs.run_fig5);
    ("pipeline", "serial vs pipelined service/I-O with 2 drives + prefetch", Pipeline.run);
    ("streaming", "first-block wakeup vs blocking fetch + adaptive readahead", Streaming.run);
    ("writeout", "streaming vs blocking segment copy-out + idle readahead", Writeout.run);
    ("faulty", "pipeline scenario under media errors + a dead drive", Faulty.run);
    ("ablate-policy", "STP exponents x cache eviction over a Zipf trace", Ablations.run_policy);
    ("ablate-staging", "immediate vs delayed copy-out (paper 5.4)", Ablations.run_staging);
    ("ablate-segsize", "segment size sweep", Ablations.run_segsize);
    ("ablate-prefetch", "namespace-unit prefetch (paper 5.3)", Ablations.run_prefetch);
    ("ablate-rearrange", "tertiary rearrangement on co-access (paper 5.4)", Ablations.run_rearrange);
    ("bakeoff", "HighLight vs Jaquith+FFS on the same archival trace", Bakeoff.run);
    ("micro", "Bechamel micro-benchmarks of hot paths", Micro.run);
    ("engine", "events/sec + minor-words/event vs the pre-PR engine", Engine_bench.run);
  ]

(* One record per executed target: simulated seconds consumed by its
   runs, and host wall-clock seconds. Written by --json. *)
let timings : (string * float * float) list ref = ref []

let run_timed (name, _, run) =
  ignore (Config.take_sim_elapsed ());
  let w0 = Unix.gettimeofday () in
  run ();
  let wall = Unix.gettimeofday () -. w0 in
  timings := (name, Config.take_sim_elapsed (), wall) :: !timings

let write_json (file, oc) =
  Printf.fprintf oc "{\n  \"schema\": \"highlight-bench/v1\",\n";
  (* demand-fetch latency percentiles, folded across every target that
     harvested its instance's registry (see Config.harvest_metrics) *)
  let n, p50, p95, p99 =
    match Sim.Metrics.find_histogram Config.bench_metrics "service.demand_fetch_latency_s" with
    | Some h when Sim.Metrics.observations h > 0 ->
        ( Sim.Metrics.observations h,
          Sim.Metrics.percentile h 0.5,
          Sim.Metrics.percentile h 0.95,
          Sim.Metrics.percentile h 0.99 )
    | _ -> (0, 0.0, 0.0, 0.0)
  in
  Printf.fprintf oc
    "  \"demand_fetch_latency_s\": { \"count\": %d, \"p50\": %.6f, \"p95\": %.6f, \"p99\": \
     %.6f },\n"
    n p50 p95 p99;
  (* per-category wait blame of every run that installed a ledger
     (pipeline/streaming modes), seconds per request class *)
  Printf.fprintf oc "  \"attribution\": {\n";
  let attrs = !Config.attributions in
  List.iteri
    (fun i (label, classes) ->
      Printf.fprintf oc "    %S: {" label;
      List.iteri
        (fun j (cls, cats) ->
          if j > 0 then output_string oc ",";
          Printf.fprintf oc " %S: { %s }" cls
            (String.concat ", "
               (List.map (fun (cat, v) -> Printf.sprintf "%S: %.6f" cat v) cats)))
        classes;
      Printf.fprintf oc " }%s\n" (if i = List.length attrs - 1 then "" else ","))
    attrs;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"targets\": {\n";
  let rows = List.rev !timings in
  List.iteri
    (fun i (name, sim, wall) ->
      Printf.fprintf oc "    %S: { \"sim_elapsed_s\": %.3f, \"wall_s\": %.3f }%s\n" name sim
        wall
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let run_all () =
  print_endline "HighLight reproduction: regenerating every table and figure.";
  print_endline "(simulated 1993 testbed; see EXPERIMENTS.md for the calibration notes)";
  List.iter
    (fun ((name, _, _) as t) ->
      if name <> "table6" then begin
        Printf.printf "\n### %s\n%!" name;
        run_timed t
      end)
    targets

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) targets with
  | Some t -> run_timed t
  | None ->
      Printf.eprintf "unknown target %s; try --list\n" name;
      exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* peel off --json FILE / --trace FILE wherever they appear *)
  let rec extract flag acc = function
    | f :: file :: rest when f = flag -> (Some file, List.rev_append acc rest)
    | a :: rest -> extract flag (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = extract "--json" [] args in
  let trace, args = extract "--trace" [] args in
  if trace <> None then Config.trace_requested := true;
  (* open now so a bad path fails before the benches run, not after *)
  let json =
    Option.map
      (fun file ->
        match open_out file with
        | oc -> (file, oc)
        | exception Sys_error msg ->
            Printf.eprintf "cannot write %s\n" msg;
            exit 1)
      json
  in
  (match args with
  | [ "--list" ] ->
      List.iter (fun (name, descr, _) -> Printf.printf "%-16s %s\n" name descr) targets
  | [ "--only"; name ] -> run_one name
  | [] -> run_all ()
  | _ ->
      prerr_endline
        "usage: main.exe [--list | --only <target>] [--json <file>] [--trace <file>]";
      exit 1);
  Option.iter write_json json;
  Option.iter
    (fun file ->
      match !Config.trace_acc with
      | Some tr ->
          Sim.Trace.write_file tr file;
          Printf.printf "wrote %s (%d trace events)\n" file (Sim.Trace.event_count tr)
      | None -> prerr_endline "no trace captured (no target ran a simulation)")
    trace
