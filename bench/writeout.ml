(* Write-out pipeline bench: the copy-out half of the hierarchy,
   quantified.

   Phase 1 stages the same files to disk (deferred migration) and then
   copies the staged segments out to tape one at a time, with the
   streaming write-out on and off. Tape is where the serialized shape
   hurts most: a 16 MB segment spends ~11.5 s crossing the staging disk
   and ~15 s crossing the Metrum drive, and the blocking path pays them
   back to back. The streaming path reads the next chunk off the disk
   while the previous one is still going down the tape, so a segment's
   copy-out costs max(read, write) + one chunk instead of read + write.
   A Ledger is installed around the measured phase so the gain shows up
   as genuine transfer overlap in the "writeout" class attribution —
   the tertiary_write seconds must match across modes (the same bytes
   cross the same tape) while the disk-side categories collapse.

   Phase 2 demonstrates the cost-aware idle readahead: a warmed working
   set is ejected, one demand read loads the volume, and the idle
   tertiary workers quietly stage the remaining warm segments while the
   reader thinks. The timed re-read then runs mostly out of cache.

   Results go to stdout and to BENCH_writeout.json (schema
   highlight-bench-writeout/v1) for CI trend tracking. *)

open Lfs

(* ---------- phase 1: tape copy-out wall-clock ---------- *)

let wo_seg_blocks = 4096 (* 16 MB segments: tape wants large units *)
let wo_file_blocks = 500 (* 2 MB files: direct + one indirect level *)
let wo_nfiles = 4 (* one staged tape segment each; full-image copy-outs *)

let pattern tag nbytes = Bytes.init nbytes (fun i -> Char.chr ((tag + (i * 31)) land 0xff))

type wo_run = {
  per_seg_s : float; (* mean copy-out wall-clock per staged segment *)
  elapsed_s : float; (* all segments, sequential request+await *)
  segments : int;
  overlap : float; (* Hl.stats.writeout_overlap *)
  disk_busy : float;
  tert_busy : float;
  ok : bool;
  mutable attribution : (string * (string * float) list) list;
}

let run_writeout ~streaming =
  let engine = Sim.Engine.create () in
  let r =
    Config.in_sim engine (fun () ->
        let bus = Device.Scsi_bus.create engine "scsi0" in
        let disk = Device.Disk.create engine ~bus Device.Disk.rz57 ~name:"rz57" in
        let jukebox =
          Device.Jukebox.create engine ~drives:2 ~nvolumes:2
            ~vol_capacity:(8 * wo_seg_blocks) ~media:Device.Jukebox.metrum_tape
            ~changer:Device.Jukebox.metrum_changer "metrum"
        in
        let fp = Footprint.create ~seg_blocks:wo_seg_blocks ~segs_per_volume:8 [ jukebox ] in
        let dev = Dev.of_disk disk in
        let prm =
          {
            Config.paper_prm with
            Param.seg_blocks = wo_seg_blocks;
            nsegs = (dev.Dev.nblocks / wo_seg_blocks) - 1;
          }
        in
        let hl = Highlight.Hl.mkfs engine prm ~disk:dev ~fp () in
        Highlight.Hl.set_streaming_writeout hl streaming;
        let st = Highlight.Hl.state hl in
        let fsys = Highlight.Hl.fs hl in
        let file_bytes = wo_file_blocks * prm.Param.block_size in
        let paths = List.init wo_nfiles (fun i -> Printf.sprintf "/cold%d" i) in
        List.iteri
          (fun i path -> Highlight.Hl.write_file hl path (pattern (i + 1) file_bytes))
          paths;
        Fs.checkpoint fsys;
        st.Highlight.State.restrict_volume <- Some 0;
        (* stage only, one file per segment: the images land on the
           staging disk, the copy-out is deferred so the measured phase
           is pure copy-out *)
        List.iter
          (fun p ->
            ignore
              (Highlight.Migrator.stage_files_only st [ (Dir.namei fsys p).Lfs.Inode.inum ]))
          paths;
        let staged = ref [] in
        Highlight.Seg_cache.iter (Highlight.Hl.cache hl) (fun l ->
            if l.Highlight.Seg_cache.state = Highlight.Seg_cache.Staging then
              staged := l :: !staged);
        let lines =
          List.sort
            (fun a b ->
              compare a.Highlight.Seg_cache.tindex b.Highlight.Seg_cache.tindex)
            !staged
        in
        Highlight.Hl.reset_stats hl;
        (* attribute the measured copy-outs only, not the setup staging *)
        Sim.Ledger.install ~metrics:(Highlight.Hl.metrics hl) engine;
        let ok = ref true in
        let t0 = Sim.Engine.now engine in
        let per_seg =
          List.map
            (fun line ->
              let t = Sim.Engine.now engine in
              (match Highlight.Service.(await (request_writeout st line)) with
              | Highlight.State.Done | Highlight.State.Rehomed _ -> ()
              | _ -> ok := false);
              Sim.Engine.now engine -. t)
            lines
        in
        let elapsed = Sim.Engine.now engine -. t0 in
        (* quiesce so the in-flight ledgers close before the harvest *)
        Sim.Engine.delay 30.0;
        let s = Highlight.Hl.stats hl in
        if s.Highlight.Hl.writeouts <> List.length lines then ok := false;
        (* read back through the tape copies: the copy-out must have
           written what the migrator staged *)
        st.Highlight.State.restrict_volume <- None;
        Highlight.Hl.eject_tertiary_copies hl ~paths;
        List.iteri
          (fun i path ->
            let got = Highlight.Hl.read_file hl path () in
            if not (Bytes.equal got (pattern (i + 1) file_bytes)) then ok := false)
          paths;
        Config.harvest_metrics (Highlight.Hl.metrics hl);
        Highlight.Hl.shutdown_service hl;
        let n = List.length per_seg in
        {
          per_seg_s = (if n = 0 then 0.0 else List.fold_left ( +. ) 0.0 per_seg /. float_of_int n);
          elapsed_s = elapsed;
          segments = n;
          overlap = s.Highlight.Hl.writeout_overlap;
          disk_busy = s.Highlight.Hl.io_disk_time;
          tert_busy = s.Highlight.Hl.io_tertiary_time;
          ok = !ok;
          attribution = [];
        })
  in
  r.attribution <-
    Config.take_attribution
      (Printf.sprintf "writeout.%s" (if streaming then "streaming" else "blocking"));
  r

(* ---------- phase 2: cost-aware idle readahead ---------- *)

let idle_seg_blocks = 16
let idle_file_blocks = 12 (* all direct: one staged segment per file *)
let idle_nfiles = 16

type idle_run = {
  reread_s : float; (* timed re-read of the warm set, file 0 excluded *)
  demand_fetches : int;
  issued : int;
  used : int;
  preempted : int;
}

let run_idle ~idle =
  let engine = Sim.Engine.create () in
  Config.in_sim engine (fun () ->
      let prm = Param.for_tests ~seg_blocks:idle_seg_blocks ~nsegs:96 () in
      let store =
        Device.Blockstore.create ~block_size:prm.Param.block_size
          ~nblocks:(Layout.disk_blocks prm)
      in
      let jukebox =
        Device.Jukebox.create engine ~drives:2 ~nvolumes:2
          ~vol_capacity:(32 * idle_seg_blocks) ~media:Device.Jukebox.hp6300_platter
          ~changer:Device.Jukebox.hp6300_changer "hp6300"
      in
      let fp = Footprint.create ~seg_blocks:idle_seg_blocks ~segs_per_volume:32 [ jukebox ] in
      let hl =
        Highlight.Hl.mkfs engine prm ~disk:(Dev.of_store store) ~fp ~cache_segs:20 ()
      in
      let st = Highlight.Hl.state hl in
      let fsys = Highlight.Hl.fs hl in
      let file_bytes = idle_file_blocks * prm.Param.block_size in
      let paths = Array.init idle_nfiles (fun i -> Printf.sprintf "/w%02d" i) in
      Array.iteri
        (fun i path -> Highlight.Hl.write_file hl path (pattern (i + 1) file_bytes))
        paths;
      Fs.checkpoint fsys;
      st.Highlight.State.restrict_volume <- Some 0;
      Array.iter
        (fun path -> ignore (Highlight.Migrator.migrate_paths st ~with_inodes:false [ path ]))
        paths;
      st.Highlight.State.restrict_volume <- None;
      (* warm the set once: every segment earns heat, inodes enter the
         in-memory inode table *)
      Array.iter (fun path -> ignore (Highlight.Hl.read_file hl path ())) paths;
      Highlight.Hl.eject_tertiary_copies hl ~paths:(Array.to_list paths);
      Highlight.Hl.reset_stats hl;
      Highlight.Hl.set_idle_readahead hl idle;
      (* one demand read loads the volume; then think time, during which
         idle drives stage the rest of the warm set (or sit, if off) *)
      ignore (Highlight.Hl.read_file hl paths.(0) ());
      Sim.Engine.delay 300.0;
      let t0 = Sim.Engine.now engine in
      for i = 1 to idle_nfiles - 1 do
        ignore (Highlight.Hl.read_file hl paths.(i) ())
      done;
      let reread_s = Sim.Engine.now engine -. t0 in
      let s = Highlight.Hl.stats hl in
      let used =
        Sim.Metrics.count (Sim.Metrics.counter (Highlight.Hl.metrics hl) "idle.used")
      in
      Highlight.Hl.shutdown_service hl;
      {
        reread_s;
        demand_fetches = s.Highlight.Hl.demand_fetches;
        issued = s.Highlight.Hl.idle_prefetches_issued;
        used;
        preempted = s.Highlight.Hl.idle_prefetches_preempted;
      })

(* ---------- driver ---------- *)

(* writeout-class category blame as a JSON object (seconds per category) *)
let attr_json attribution =
  match List.assoc_opt "writeout" attribution with
  | None -> "{}"
  | Some cats ->
      "{ "
      ^ String.concat ", " (List.map (fun (c, v) -> Printf.sprintf "%S: %.6f" c v) cats)
      ^ " }"

let attr_cat attribution cat =
  match List.assoc_opt "writeout" attribution with
  | None -> 0.0
  | Some cats -> ( match List.assoc_opt cat cats with Some v -> v | None -> 0.0)

let attr_e2e attribution =
  match List.assoc_opt "writeout" attribution with
  | None -> 0.0
  | Some cats -> List.fold_left (fun a (_, v) -> a +. v) 0.0 cats

let run () =
  let blocking = run_writeout ~streaming:false in
  let streaming = run_writeout ~streaming:true in
  let t =
    Util.Tablefmt.create
      ~title:
        (Printf.sprintf "Streaming write-out: %d MB tape segments, %d staged copy-outs"
           (wo_seg_blocks * 4096 / 1024 / 1024)
           blocking.segments)
      ~header:
        [
          "mode"; "per-seg (s)"; "elapsed (s)"; "overlap"; "disk busy (s)";
          "tape busy (s)"; "bytes";
        ]
  in
  let row name (r : wo_run) =
    Util.Tablefmt.add_row t
      [
        name;
        Printf.sprintf "%.1f" r.per_seg_s;
        Printf.sprintf "%.1f" r.elapsed_s;
        Printf.sprintf "%.2f" r.overlap;
        Printf.sprintf "%.1f" r.disk_busy;
        Printf.sprintf "%.1f" r.tert_busy;
        (if r.ok then "identical" else "CORRUPT");
      ]
  in
  row "blocking" blocking;
  row "streaming" streaming;
  Util.Tablefmt.print t;
  let speedup =
    if streaming.per_seg_s > 0.0 then blocking.per_seg_s /. streaming.per_seg_s else 0.0
  in
  let b_tw = attr_cat blocking.attribution "tertiary_write" in
  let s_tw = attr_cat streaming.attribution "tertiary_write" in
  let tw_parity = if b_tw > 0.0 then s_tw /. b_tw else 0.0 in
  let s_e2e = attr_e2e streaming.attribution in
  let b_e2e = attr_e2e blocking.attribution in
  let tw_share = if s_e2e > 0.0 then s_tw /. s_e2e else 0.0 in
  Printf.printf "  copy-out speedup: %.2fx per segment (target >= 1.5x)  [%s]\n" speedup
    (if speedup >= 1.5 && blocking.ok && streaming.ok then "ok" else "FAIL");
  Printf.printf
    "  writeout overlap: streaming %.2f (target >= 1.5), blocking %.2f (target <= 1.1)  [%s]\n"
    streaming.overlap blocking.overlap
    (if streaming.overlap >= 1.5 && blocking.overlap <= 1.1 then "ok" else "FAIL");
  Printf.printf
    "  attribution: tertiary_write %.1f s vs %.1f s (ratio %.3f, target 1 +/- 0.1) — the \
     same bytes cross the tape  [%s]\n"
    s_tw b_tw tw_parity
    (if tw_parity >= 0.9 && tw_parity <= 1.1 then "ok" else "FAIL");
  Printf.printf
    "  attribution: streaming e2e %.1f s is %.0f%% tertiary_write (blocking e2e %.1f s) — \
     the disk read hid inside the tape write, not inside queue_wait  [%s]\n"
    s_e2e (100.0 *. tw_share) b_e2e
    (if tw_share >= 0.75 && s_e2e < b_e2e then "ok" else "FAIL");
  let off = run_idle ~idle:false in
  let on = run_idle ~idle:true in
  Printf.printf
    "  idle readahead: %d issued, %d used, %d preempted; warm re-read %.1f s vs %.1f s \
     off (demand fetches %d vs %d)  [%s]\n"
    on.issued on.used on.preempted on.reread_s off.reread_s on.demand_fetches
    off.demand_fetches
    (if on.issued > 0 && on.used > 0 && on.reread_s < off.reread_s then "ok" else "FAIL");
  let verified =
    blocking.ok && streaming.ok && speedup >= 1.5 && streaming.overlap >= 1.5
    && blocking.overlap <= 1.1
    && tw_parity >= 0.9 && tw_parity <= 1.1
  in
  let oc = open_out "BENCH_writeout.json" in
  Printf.fprintf oc
    {|{
  "schema": "highlight-bench-writeout/v1",
  "tape_segment_bytes": %d,
  "staged_segments": %d,
  "copyout_per_segment_s": { "blocking": %.3f, "streaming": %.3f, "speedup": %.3f },
  "copyout_elapsed_s": { "blocking": %.3f, "streaming": %.3f },
  "writeout_overlap": { "blocking": %.4f, "streaming": %.4f },
  "attribution": {
    "blocking": %s,
    "streaming": %s
  },
  "tertiary_write_parity": %.4f,
  "idle_readahead": {
    "issued": %d, "used": %d, "preempted": %d,
    "warm_reread_s": { "off": %.3f, "on": %.3f },
    "demand_fetches": { "off": %d, "on": %d }
  },
  "verified": %b
}
|}
    (wo_seg_blocks * 4096) blocking.segments blocking.per_seg_s streaming.per_seg_s speedup
    blocking.elapsed_s streaming.elapsed_s blocking.overlap streaming.overlap
    (attr_json blocking.attribution)
    (attr_json streaming.attribution)
    tw_parity on.issued on.used on.preempted off.reread_s on.reread_s off.demand_fetches
    on.demand_fetches verified;
  close_out oc;
  print_endline "  wrote BENCH_writeout.json"
